"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show the available experiments (paper tables/figures + ablations).
``run <experiment> [...]``
    Regenerate one experiment and print its paper-style table.
``run all``
    Regenerate everything (slow at bench scale).
``compute <algorithm> [...]``
    One engine run with checkpointing, crash/resume, and fault
    injection controls (see DESIGN.md §8).
``info``
    Print the active configuration and dataset shapes.

Examples::

    python -m repro list
    python -m repro run fig5 --scale test
    python -m repro run fig6 --scale bench --datasets cf
    python -m repro run fig5 --scale test --trace /tmp/fig5.jsonl --json /tmp/fig5.json
    python -m repro compute pagerank --dataset rmat256 --checkpoint-every 2 \
        --fault crash@40 --checkpoint-out /tmp/pr.ckpt
    python -m repro compute pagerank --dataset rmat256 --resume-from /tmp/pr.ckpt
    python -m repro info

``run`` artifacts:

* ``--trace PATH`` -- install an ambient :class:`~repro.obs.TraceRecorder`
  for every engine run the experiment performs and write the combined
  event stream as JSONL;
* ``--csv PATH`` / ``--json PATH`` -- export the experiment tables
  (one file per table when an experiment produces several).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from .config import DEFAULT_CONFIG
from .experiments import ALL_EXPERIMENTS
from .experiments.common import ExperimentResult


def _print_results(results) -> None:
    if isinstance(results, ExperimentResult):
        results = [results]
    for r in results:
        print(r.render())
        print()


def cmd_list(_args) -> int:
    print("available experiments:")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    return 0


def _export_results(results: List[ExperimentResult], path: str, kind: str) -> None:
    """Write experiment tables to ``path`` (suffixed when several)."""
    from .metrics.export import save_csv, save_json

    save = save_csv if kind == "csv" else save_json
    p = Path(path)
    if len(results) == 1:
        written = [save(results[0], p)]
    else:
        written = [
            save(r, p.with_name(f"{p.stem}-{r.experiment}{p.suffix}"))
            for r in results
        ]
    for w in written:
        print(f"[{kind} written to {w}]")


def cmd_run(args) -> int:
    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(ALL_EXPERIMENTS)} or 'all'", file=sys.stderr)
        return 2
    tracer = None
    if args.trace:
        from .obs import TraceRecorder

        tracer = TraceRecorder()
    collected: List[ExperimentResult] = []
    for name in names:
        fn = ALL_EXPERIMENTS[name]
        kwargs = {}
        if args.scale:
            kwargs["scale"] = args.scale
        if args.datasets and name not in ("fig5", "ablations", "table1"):
            kwargs["datasets"] = tuple(args.datasets.split(","))
        t0 = time.time()
        if tracer is not None:
            # Ambient tracer: every engine the experiment constructs
            # picks it up via repro.obs.current_tracer().
            from .obs import use_tracer

            with use_tracer(tracer):
                results = fn(**kwargs)
        else:
            results = fn(**kwargs)
        _print_results(results)
        if isinstance(results, ExperimentResult):
            collected.append(results)
        else:
            collected.extend(results)
        print(f"[{name} regenerated in {time.time() - t0:.1f}s]\n")
    if tracer is not None:
        from .obs import write_jsonl

        write_jsonl(tracer.events, args.trace)
        print(f"[trace: {len(tracer.events)} events written to {args.trace}]")
    if args.csv:
        _export_results(collected, args.csv, "csv")
    if args.json:
        _export_results(collected, args.json, "json")
    return 0


#: Algorithm names accepted by ``compute``.
_COMPUTE_ALGORITHMS = ("pagerank", "bfs", "wcc", "sssp", "cdlp", "coloring", "mis")

#: Algorithms that require edge weights (forces ``--weighted``).
_NEEDS_WEIGHTS = {"sssp"}

#: Dataset names accepted by ``compute``/``ingest`` ``--dataset``.
#: An argparse ``choices`` list, so ``--help`` shows the valid names and
#: a typo exits immediately with the list instead of failing mid-run.
_DATASET_NAMES = (
    "cf", "yws",
    "rmat256", "rmat512", "chain", "ring", "grid", "star", "tiny", "two_components",
)


def _compute_program(name: str, args):
    from . import algorithms as alg

    table = {
        "pagerank": lambda: alg.DeltaPageRankProgram(),
        "bfs": lambda: alg.BFSProgram(source=args.source),
        "wcc": lambda: alg.WCCProgram(),
        "sssp": lambda: alg.SSSPProgram(source=args.source),
        "cdlp": lambda: alg.CommunityDetectionProgram(),
        "coloring": lambda: alg.GraphColoringProgram(),
        "mis": lambda: alg.MISProgram(),
    }
    return table[name]()


def _compute_dataset(name: str, scale: str, weighted: bool):
    from .graph import datasets as d

    small = {
        "rmat256": lambda: d.small_rmat(n=256, m=2048, seed=3, weighted=weighted),
        "rmat512": lambda: d.small_rmat(weighted=weighted),
        "chain": d.small_chain,
        "ring": d.small_ring,
        "grid": d.small_grid,
        "star": d.small_star,
        "tiny": d.tiny_paper_graph,
        "two_components": d.two_components,
    }
    if name in small:
        g = small[name]()
        if weighted and g.weights is None:
            raise SystemExit(f"dataset {name!r} has no weighted variant")
        return g
    return d.dataset_by_name(name, scale=scale, weighted=weighted)


def _parse_fault(spec: str, seed: int):
    """``KIND@OPS[:KLASS]`` with KIND in crash|torn|error, e.g. ``crash@40:mlog``."""
    from .ssd import FaultPlan, FaultRule

    head, _, klass = spec.partition(":")
    kind, at, ops = head.partition("@")
    if kind not in ("crash", "torn", "error") or not at:
        raise SystemExit(
            f"bad --fault spec {spec!r}; expected KIND@OPS[:KLASS], "
            f"KIND one of crash/torn/error"
        )
    try:
        n_ops = int(ops)
    except ValueError:
        raise SystemExit(f"bad --fault spec {spec!r}: OPS must be an integer") from None
    kl = klass or None
    if kind == "crash":
        return FaultPlan.crash_after(n_ops, seed=seed, klass=kl)
    if kind == "torn":
        return FaultPlan.torn_write_after(n_ops, seed=seed, klass=kl)
    return FaultPlan(
        [FaultRule(op="read", kind="error", after_ops=n_ops, klass=kl, transient=True)],
        seed=seed,
    )


def cmd_compute(args) -> int:
    from . import engines as repro_engines
    from . import resume as repro_resume
    from . import run as repro_run
    from .config import small_test_config
    from .errors import RecoveryError, SimulatedCrashError
    from .options import EngineOptions
    from .recovery import CheckpointData, CheckpointManager
    from .ssd.filesystem import SimFS

    all_engines = repro_engines()
    if args.engine not in all_engines:
        print(
            f"unknown engine {args.engine!r}; choose from {', '.join(sorted(all_engines))}",
            file=sys.stderr,
        )
        return 2
    caps = all_engines[args.engine]
    if args.resume_from and not caps.supports_resume:
        capable = sorted(n for n, i in repro_engines().items() if i.supports_resume)
        print(
            f"engine {args.engine!r} does not support --resume-from "
            f"(supported by: {', '.join(capable)})",
            file=sys.stderr,
        )
        return 2
    if args.checkpoint_every and not caps.supports_checkpoint:
        capable = sorted(n for n, i in repro_engines().items() if i.supports_checkpoint)
        print(
            f"engine {args.engine!r} does not support --checkpoint-every "
            f"(supported by: {', '.join(capable)})",
            file=sys.stderr,
        )
        return 2
    if args.resume_from and args.fault:
        print(
            "--resume-from and --fault conflict: the fault plan would arm against "
            "the resumed run's fresh file system, not the crashed one; inject the "
            "fault in the first run and resume in a second invocation",
            file=sys.stderr,
        )
        return 2
    if args.updates:
        if args.resume_from:
            print(
                "--updates and --resume-from conflict: a checkpoint binds to the "
                "graph it was computed on, which the update batch changes",
                file=sys.stderr,
            )
            return 2
        if not Path(args.updates).is_file():
            print(f"--updates file not found: {args.updates}", file=sys.stderr)
            return 2
    cache_enabled = args.cache_policy != "none" or args.cache_bytes is not None
    if args.io_plan == "coalesce+readahead" and not cache_enabled:
        print(
            "--io-plan coalesce+readahead requires a page cache to prefetch "
            "into: add --cache-policy clock (or --cache-bytes)",
            file=sys.stderr,
        )
        return 2
    if args.readahead_pages is not None and args.io_plan != "coalesce+readahead":
        print(
            "--readahead-pages only applies with --io-plan coalesce+readahead",
            file=sys.stderr,
        )
        return 2
    if args.devices is not None and args.devices < 1:
        print("--devices must be >= 1", file=sys.stderr)
        return 2
    if (args.devices is not None or args.placement is not None) and (
        "num_devices" not in caps.options
    ):
        capable = sorted(n for n, i in all_engines.items() if "num_devices" in i.options)
        print(
            f"engine {args.engine!r} performs no simulated I/O, so --devices/"
            f"--placement do not apply (supported by: {', '.join(capable)})",
            file=sys.stderr,
        )
        return 2

    weighted = args.weighted or args.algorithm in _NEEDS_WEIGHTS
    graph = _compute_dataset(args.dataset, args.scale, weighted)
    program = _compute_program(args.algorithm, args)
    cfg = small_test_config() if args.scale == "test" else DEFAULT_CONFIG
    if args.cache_policy != "none" or args.cache_bytes is not None:
        # --cache-bytes alone implies the (only) real policy, clock.
        cfg = cfg.with_cache(policy="clock", cache_bytes=args.cache_bytes)
    if args.workers is not None:
        cfg = cfg.with_workers(args.workers)
    if args.io_plan != "off":
        cfg = cfg.with_io_plan(args.io_plan, readahead_pages=args.readahead_pages)
    if args.devices is not None or args.placement is not None:
        cfg = cfg.with_devices(args.devices, args.placement)
    opt_kwargs = {}
    if caps.supports_checkpoint:
        opt_kwargs = dict(
            checkpoint_every=args.checkpoint_every, checkpoint_mode=args.checkpoint_mode
        )
    options = EngineOptions(**opt_kwargs)

    if args.updates:
        return _compute_with_updates(args, graph, program, cfg, options)

    fs = SimFS(cfg)
    if args.fault:
        fs.device.install_faults(_parse_fault(args.fault, args.fault_seed))

    tracer = None
    if args.trace:
        from .obs import TraceRecorder

        tracer = TraceRecorder()

    def _finish_trace():
        if tracer is not None:
            from .obs import write_jsonl

            write_jsonl(tracer.events, args.trace)
            print(f"[trace: {len(tracer.events)} events written to {args.trace}]")

    def _save_checkpoint():
        if not args.checkpoint_out:
            return
        try:
            ckpt = CheckpointManager.load_latest(fs)
        except RecoveryError as exc:
            print(f"[no checkpoint to save: {exc}]", file=sys.stderr)
            return
        ckpt.save(args.checkpoint_out)
        print(f"[checkpoint {ckpt.ckpt_id} (superstep {ckpt.step}) saved to {args.checkpoint_out}]")

    common = dict(
        config=cfg,
        options=options,
        tracer=tracer,
        fs=fs,
        max_supersteps=args.max_supersteps,
        seed=args.seed,
    )
    try:
        if args.resume_from:
            result = repro_resume(graph, program, args.resume_from, **common)
        else:
            result = repro_run(graph, program, engine=args.engine, **common)
    except SimulatedCrashError as exc:
        print(f"simulated power loss: {exc}", file=sys.stderr)
        _save_checkpoint()
        _finish_trace()
        return 3
    print(result.summary())
    _save_checkpoint()
    _finish_trace()
    return 0


def _read_update_records(path: str) -> list:
    """Parse a JSONL update file (one ``{"op", "src", "dst", ...}`` per line)."""
    import json

    records = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise SystemExit(f"{path}:{lineno}: malformed JSON: {exc}")
    return records


def _compute_with_updates(args, graph, program, cfg, options) -> int:
    """``compute --updates``: merge one batch, then run on the result."""
    from .errors import GraphFormatError, SimulatedCrashError
    from .obs import NULL_TRACER
    from .stream import EdgeDelta, StreamSession

    try:
        delta = EdgeDelta.from_records(_read_update_records(args.updates))
        delta.validate(graph.n)
    except GraphFormatError as exc:
        print(f"bad --updates file {args.updates}: {exc}", file=sys.stderr)
        return 2

    tracer = None
    if args.trace:
        from .obs import TraceRecorder

        tracer = TraceRecorder()
    session = StreamSession(
        graph, program, engine=args.engine, config=cfg,
        options=options.replace(recompute=args.recompute),
        tracer=tracer if tracer is not None else NULL_TRACER,
    )
    if args.fault:
        session.fs.device.install_faults(_parse_fault(args.fault, args.fault_seed))
    try:
        ing = session.ingest(delta)
        app = session.apply_updates()
        r = session.recompute(max_supersteps=args.max_supersteps, seed=args.seed)
    except SimulatedCrashError as exc:
        print(f"simulated power loss: {exc}", file=sys.stderr)
        return 3
    finally:
        if tracer is not None:
            from .obs import write_jsonl

            write_jsonl(tracer.events, args.trace)
            print(f"[trace: {len(tracer.events)} events written to {args.trace}]")
    print(
        f"[updates: {delta.n} records ({delta.n_adds} adds, {delta.n_deletes} deletes) "
        f"merged in {ing['io_us'] + app['io_us']:.0f} us simulated I/O; "
        f"recompute={r.mode} (changed {r.changed_edges} edges, "
        f"{100 * r.changed_fraction:.1f}%)]"
    )
    print(r.result.summary())
    return 0


def cmd_ingest(args) -> int:
    from . import engines as repro_engines
    from .config import small_test_config
    from .errors import GraphFormatError, SimulatedCrashError
    from .obs import NULL_TRACER
    from .options import EngineOptions
    from .stream import EdgeDelta, StreamSession, random_delta

    import numpy as np

    if args.engine not in repro_engines():
        print(
            f"unknown engine {args.engine!r}; choose from "
            f"{', '.join(sorted(repro_engines()))}",
            file=sys.stderr,
        )
        return 2
    if bool(args.updates) == bool(args.random):
        print("exactly one of --updates FILE or --random N is required", file=sys.stderr)
        return 2
    if args.updates and not Path(args.updates).is_file():
        print(f"--updates file not found: {args.updates}", file=sys.stderr)
        return 2

    weighted = args.algorithm in _NEEDS_WEIGHTS
    graph = _compute_dataset(args.dataset, args.scale, weighted)
    program = _compute_program(args.algorithm, args)
    cfg = small_test_config() if args.scale == "test" else DEFAULT_CONFIG
    if args.compact_threshold is not None or args.max_delta_fraction is not None:
        cfg = cfg.with_stream(
            compact_threshold=args.compact_threshold,
            max_delta_fraction=args.max_delta_fraction,
        )

    tracer = None
    if args.trace:
        from .obs import TraceRecorder

        tracer = TraceRecorder()
    session = StreamSession(
        graph, program, engine=args.engine, config=cfg,
        options=EngineOptions(recompute=args.recompute),
        tracer=tracer if tracer is not None else NULL_TRACER,
    )

    # Batch plan: a JSONL file is split evenly into --batches chunks;
    # --random N generates N seeded ops per batch against the live edges.
    if args.updates:
        try:
            all_records = _read_update_records(args.updates)
            deltas = [
                EdgeDelta.from_records([all_records[int(i)] for i in chunk])
                for chunk in np.array_split(np.arange(len(all_records)), max(1, args.batches))
                if len(chunk)
            ]
            for d in deltas:
                d.validate(graph.n)
        except GraphFormatError as exc:
            print(f"bad --updates file {args.updates}: {exc}", file=sys.stderr)
            return 2
    else:
        deltas = None  # generated per batch, against the evolving live set

    rows = []
    try:
        base = session.recompute(max_supersteps=args.max_supersteps, seed=args.seed)
        print(f"[baseline: {base.result.summary()}]")
        n_batches = len(deltas) if deltas is not None else max(1, args.batches)
        for b in range(n_batches):
            if deltas is not None:
                delta = deltas[b]
            else:
                rng = np.random.default_rng([args.seed, b])
                ls, ld = session.store.live_edge_arrays()
                delta = random_delta(
                    rng, graph.n, ls, ld, args.random,
                    weighted=weighted, ts0=1000 * b,
                )
            ing = session.ingest(delta)
            app = session.apply_updates()
            r = session.recompute(max_supersteps=args.max_supersteps, seed=args.seed)
            row = {
                "batch": b,
                "seq": ing["seq"],
                "records": delta.n,
                "adds": delta.n_adds,
                "deletes": delta.n_deletes,
                "compactions": app["compactions"],
                "mode": r.mode,
                "changed_edges": r.changed_edges,
                "seed_io_us": r.seed_io_us,
                "engine_io_us": r.result.stats.total_time_us,
                "supersteps": len(r.result.supersteps),
            }
            rows.append(row)
            print(
                f"batch {b}: seq={row['seq']} {row['records']} records "
                f"({row['adds']}+/{row['deletes']}-), "
                f"compactions={row['compactions']}, recompute={row['mode']} "
                f"({row['supersteps']} supersteps, "
                f"{row['seed_io_us'] + row['engine_io_us']:.0f} us simulated I/O)"
            )
    except SimulatedCrashError as exc:
        print(f"simulated power loss: {exc}", file=sys.stderr)
        return 3
    finally:
        if tracer is not None:
            from .obs import write_jsonl

            write_jsonl(tracer.events, args.trace)
            print(f"[trace: {len(tracer.events)} events written to {args.trace}]")

    snap = session.metrics.snapshot()
    stream_keys = sorted(k for k in snap if k.startswith("stream."))
    print("stream totals:")
    for k in stream_keys:
        v = snap[k]
        print(f"  {k} = {v:.0f}" if isinstance(v, float) else f"  {k} = {v}")
    if args.json:
        import json

        Path(args.json).write_text(
            json.dumps(
                {
                    "dataset": args.dataset,
                    "algorithm": args.algorithm,
                    "batches": rows,
                    "totals": {k: snap[k] for k in stream_keys},
                },
                indent=2,
                default=float,
            )
            + "\n"
        )
        print(f"[json written to {args.json}]")
    return 0


def cmd_info(_args) -> int:
    cfg = DEFAULT_CONFIG
    print("default simulation configuration:")
    print(f"  SSD: {cfg.ssd.page_size} B pages x {cfg.ssd.channels} channels, "
          f"read {cfg.ssd.read_latency_us} us/page, write {cfg.ssd.write_latency_us} us/page")
    print(f"  peak bandwidth: {cfg.ssd.peak_read_bandwidth_mbps:.0f} MB/s read, "
          f"{cfg.ssd.peak_write_bandwidth_mbps:.0f} MB/s write")
    print(f"  memory: {cfg.memory.total_bytes // 1024} KiB "
          f"(sort {int(100 * cfg.memory.sort_fraction)}%, "
          f"multi-log {int(100 * cfg.memory.multilog_fraction)}%, "
          f"edge-log {int(100 * cfg.memory.edgelog_fraction)}%)")
    print(f"  records: update {cfg.records.update_bytes} B, "
          f"shard edge {cfg.records.edge_record_bytes} B")
    cache_cfg = cfg.with_cache()
    print(f"  page cache (--cache-policy clock): "
          f"{cache_cfg.resolved_cache_bytes // 1024} KiB "
          f"({cache_cfg.cache_pages} pages; "
          f"{int(100 * cfg.memory.cache_fraction)}% of host DRAM)")
    from . import engines as repro_engines

    print("engines:")
    for name, info in repro_engines().items():
        flags = []
        if info.supports_resume:
            flags.append("resume")
        if info.supports_checkpoint:
            flags.append("checkpoint")
        if info.in_memory:
            flags.append("in-memory")
        opts = ", ".join(sorted(info.options)) or "none"
        print(f"  {name}: {' '.join(flags) or 'out-of-core'}")
        print(f"    options: {opts}")
    from .graph.datasets import dataset_table

    print("bench-scale datasets:")
    for label, n, m in dataset_table("bench"):
        print(f"  {label}: {n:,} vertices, {m:,} edges")
    return 0


def cmd_verify(args) -> int:
    from .verify import fuzz, replay_case, save_case, shrink
    from .verify.shrinker import default_still_fails

    if args.replay:
        outcome = replay_case(args.replay)
        print(outcome.describe())
        return 0 if outcome.ok else 1

    if args.stream is not None:
        from .verify import fuzz_stream

        failures = []

        def stream_progress(outcome):
            if not outcome.ok or not args.quiet:
                print(outcome.describe())
            if not outcome.ok:
                failures.append(outcome)

        outcomes = fuzz_stream(args.seed, args.stream, progress=stream_progress)
        print(f"{len(outcomes)} stream cases, {len(failures)} failures (seed={args.seed})")
        return 1 if failures else 0

    engines = args.engines.split(",") if args.engines else None
    failures = []

    def progress(outcome):
        if not outcome.ok or not args.quiet:
            print(outcome.describe())
        if not outcome.ok:
            failures.append(outcome)

    outcomes = fuzz(args.seed, args.cases, engines=engines, progress=progress)
    print(f"{len(outcomes)} cases, {len(failures)} failures (seed={args.seed})")
    if failures and args.shrink:
        for outcome in failures:
            print(f"shrinking {outcome.case.case_id} ...")
            try:
                small = shrink(outcome.case, default_still_fails)
            except ValueError:
                print("  failure did not reproduce under shrinking; saving original")
                small = outcome.case
            path = save_case(
                small,
                args.save_dir,
                mismatches=outcome.mismatches,
                note=f"shrunk from {outcome.case.case_id} (seed={args.seed})",
            )
            print(f"  -> {small.graph.get('n', '?')} vertices, saved {path}")
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description="MultiLogVC reproduction command line"
    )
    sub = p.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments").set_defaults(func=cmd_list)
    runp = sub.add_parser("run", help="regenerate one experiment (or 'all')")
    runp.add_argument("experiment")
    runp.add_argument("--scale", choices=("test", "bench", "large"), default=None)
    runp.add_argument("--datasets", default=None, help="comma list, e.g. cf,yws")
    runp.add_argument("--trace", default=None, metavar="PATH",
                      help="record engine trace events and write them as JSONL")
    runp.add_argument("--csv", default=None, metavar="PATH",
                      help="export the experiment table(s) as CSV")
    runp.add_argument("--json", default=None, metavar="PATH",
                      help="export the experiment table(s) as JSON")
    runp.set_defaults(func=cmd_run)
    comp = sub.add_parser(
        "compute",
        help="one MultiLogVC run with checkpoint / resume / fault-injection controls",
    )
    comp.add_argument("algorithm", choices=_COMPUTE_ALGORITHMS)
    comp.add_argument("--dataset", default="rmat256", choices=_DATASET_NAMES,
                      metavar="NAME",
                      help=f"one of: {', '.join(_DATASET_NAMES)} (default: rmat256)")
    comp.add_argument("--scale", choices=("test", "bench", "large"), default="test")
    comp.add_argument("--engine", default="multilogvc",
                      help="engine to run (see 'repro info' for capabilities; "
                           "default: multilogvc)")
    comp.add_argument("--workers", type=int, default=None, metavar="N",
                      help="worker threads for the deterministic parallel interval "
                           "executor (multilogvc; results are identical at any N)")
    comp.add_argument("--devices", type=int, default=None, metavar="N",
                      help="simulated SSD device-array size (DESIGN.md §14; "
                           "results are identical at any N, only the device.* "
                           "overlay accounting changes; default: REPRO_DEVICES or 1)")
    comp.add_argument("--placement", choices=("stripe", "affinity"), default=None,
                      help="device-array placement policy (default: affinity; "
                           "only meaningful with --devices > 1)")
    comp.add_argument("--weighted", action="store_true",
                      help="use edge weights (implied by sssp)")
    comp.add_argument("--source", type=int, default=0, help="bfs/sssp source vertex")
    comp.add_argument("--max-supersteps", type=int, default=15)
    comp.add_argument("--seed", type=int, default=0)
    comp.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                      help="write a crash-consistent checkpoint every N supersteps")
    comp.add_argument("--checkpoint-mode", choices=("full", "incremental"), default="full")
    comp.add_argument("--checkpoint-out", default=None, metavar="PATH",
                      help="save the newest valid on-SSD checkpoint to a host file "
                           "(also after a simulated crash)")
    comp.add_argument("--resume-from", default=None, metavar="PATH",
                      help="resume from a checkpoint saved with --checkpoint-out")
    comp.add_argument("--cache-policy", choices=("none", "clock"), default="none",
                      help="DRAM page cache between engine and SSD (default: none)")
    comp.add_argument("--cache-bytes", type=int, default=None, metavar="BYTES",
                      help="cache budget; implies --cache-policy clock "
                           "(default: the cache_fraction share of host DRAM)")
    comp.add_argument("--io-plan", choices=("off", "coalesce", "coalesce+readahead"),
                      default="off",
                      help="superstep I/O planner: off (per-path batches), coalesce "
                           "(extent reads + channel-balanced waves), or "
                           "coalesce+readahead (adds next-group prefetch; requires "
                           "--cache-policy clock).  Values are identical in every "
                           "mode; only simulated storage time changes (default: off)")
    comp.add_argument("--readahead-pages", type=int, default=None, metavar="N",
                      help="per-superstep prefetch page budget; only valid with "
                           "--io-plan coalesce+readahead (default: 64)")
    comp.add_argument("--fault", default=None, metavar="SPEC",
                      help="inject a fault: KIND@OPS[:KLASS], KIND in crash/torn/error "
                           "(e.g. crash@40, torn@10:mlog, error@5:csr_col)")
    comp.add_argument("--fault-seed", type=int, default=0)
    comp.add_argument("--updates", default=None, metavar="FILE",
                      help="JSONL edge updates to merge before the run "
                           "(conflicts with --resume-from)")
    comp.add_argument("--recompute", choices=("auto", "incremental", "full"),
                      default="auto",
                      help="with --updates: warm-start policy (default: auto)")
    comp.add_argument("--trace", default=None, metavar="PATH",
                      help="record engine trace events and write them as JSONL")
    comp.set_defaults(func=cmd_compute)
    ing = sub.add_parser(
        "ingest",
        help="stream edge updates into a graph and keep results fresh "
             "(multi-log ingestion + incremental recomputation)",
    )
    ing.add_argument("algorithm", choices=_COMPUTE_ALGORITHMS)
    ing.add_argument("--dataset", default="rmat256", choices=_DATASET_NAMES,
                     metavar="NAME",
                     help=f"one of: {', '.join(_DATASET_NAMES)} (default: rmat256)")
    ing.add_argument("--scale", choices=("test", "bench", "large"), default="test")
    ing.add_argument("--engine", default="multilogvc",
                     help="engine for the recomputes (default: multilogvc)")
    ing.add_argument("--updates", default=None, metavar="FILE",
                     help="JSONL update records, split evenly into --batches chunks")
    ing.add_argument("--random", type=int, default=None, metavar="N",
                     help="generate N seeded random ops per batch instead of a file")
    ing.add_argument("--batches", type=int, default=3, metavar="B",
                     help="number of update batches (default: 3)")
    ing.add_argument("--source", type=int, default=0, help="bfs/sssp source vertex")
    ing.add_argument("--max-supersteps", type=int, default=50)
    ing.add_argument("--seed", type=int, default=0)
    ing.add_argument("--recompute", choices=("auto", "incremental", "full"),
                     default="auto",
                     help="warm-start policy per batch (default: auto)")
    ing.add_argument("--compact-threshold", type=float, default=None, metavar="F",
                     help="compact an interval when its garbage fraction exceeds F")
    ing.add_argument("--max-delta-fraction", type=float, default=None, metavar="F",
                     help="'auto' falls back to full recompute above this "
                          "changed-edge fraction")
    ing.add_argument("--trace", default=None, metavar="PATH",
                     help="record trace events (ingest_stats/compaction included) "
                          "and write them as JSONL")
    ing.add_argument("--json", default=None, metavar="PATH",
                     help="write per-batch stats and stream totals as JSON")
    ing.set_defaults(func=cmd_ingest)
    sub.add_parser("info", help="show configuration and datasets").set_defaults(func=cmd_info)
    ver = sub.add_parser(
        "verify",
        help="differential conformance check: every engine vs the golden oracle",
    )
    ver.add_argument("--seed", type=int, default=0, help="fuzzer master seed")
    ver.add_argument("--cases", type=int, default=25, help="number of cases to run")
    ver.add_argument("--stream", type=int, default=None, metavar="N",
                     help="run N streaming-update differential cases instead "
                          "(ingest/merge/recompute vs from-scratch oracle)")
    ver.add_argument("--engines", default=None,
                     help="comma list to restrict, e.g. multilogvc,graphchi")
    ver.add_argument("--shrink", action="store_true",
                     help="reduce each failure to a minimal repro and save it")
    ver.add_argument("--save-dir", default="tests/cases", metavar="DIR",
                     help="where --shrink writes repro JSON files (default: tests/cases)")
    ver.add_argument("--replay", default=None, metavar="PATH",
                     help="re-run one saved repro file instead of fuzzing")
    ver.add_argument("-q", "--quiet", action="store_true",
                     help="print failing cases only")
    ver.set_defaults(func=cmd_verify)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
