"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show the available experiments (paper tables/figures + ablations).
``run <experiment> [...]``
    Regenerate one experiment and print its paper-style table.
``run all``
    Regenerate everything (slow at bench scale).
``info``
    Print the active configuration and dataset shapes.

Examples::

    python -m repro list
    python -m repro run fig5 --scale test
    python -m repro run fig6 --scale bench --datasets cf
    python -m repro run fig5 --scale test --trace /tmp/fig5.jsonl --json /tmp/fig5.json
    python -m repro info

``run`` artifacts:

* ``--trace PATH`` -- install an ambient :class:`~repro.obs.TraceRecorder`
  for every engine run the experiment performs and write the combined
  event stream as JSONL;
* ``--csv PATH`` / ``--json PATH`` -- export the experiment tables
  (one file per table when an experiment produces several).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from .config import DEFAULT_CONFIG
from .experiments import ALL_EXPERIMENTS
from .experiments.common import ExperimentResult


def _print_results(results) -> None:
    if isinstance(results, ExperimentResult):
        results = [results]
    for r in results:
        print(r.render())
        print()


def cmd_list(_args) -> int:
    print("available experiments:")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    return 0


def _export_results(results: List[ExperimentResult], path: str, kind: str) -> None:
    """Write experiment tables to ``path`` (suffixed when several)."""
    from .metrics.export import save_csv, save_json

    save = save_csv if kind == "csv" else save_json
    p = Path(path)
    if len(results) == 1:
        written = [save(results[0], p)]
    else:
        written = [
            save(r, p.with_name(f"{p.stem}-{r.experiment}{p.suffix}"))
            for r in results
        ]
    for w in written:
        print(f"[{kind} written to {w}]")


def cmd_run(args) -> int:
    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(ALL_EXPERIMENTS)} or 'all'", file=sys.stderr)
        return 2
    tracer = None
    if args.trace:
        from .obs import TraceRecorder

        tracer = TraceRecorder()
    collected: List[ExperimentResult] = []
    for name in names:
        fn = ALL_EXPERIMENTS[name]
        kwargs = {}
        if args.scale:
            kwargs["scale"] = args.scale
        if args.datasets and name not in ("fig5", "ablations", "table1"):
            kwargs["datasets"] = tuple(args.datasets.split(","))
        t0 = time.time()
        if tracer is not None:
            # Ambient tracer: every engine the experiment constructs
            # picks it up via repro.obs.current_tracer().
            from .obs import use_tracer

            with use_tracer(tracer):
                results = fn(**kwargs)
        else:
            results = fn(**kwargs)
        _print_results(results)
        if isinstance(results, ExperimentResult):
            collected.append(results)
        else:
            collected.extend(results)
        print(f"[{name} regenerated in {time.time() - t0:.1f}s]\n")
    if tracer is not None:
        from .obs import write_jsonl

        write_jsonl(tracer.events, args.trace)
        print(f"[trace: {len(tracer.events)} events written to {args.trace}]")
    if args.csv:
        _export_results(collected, args.csv, "csv")
    if args.json:
        _export_results(collected, args.json, "json")
    return 0


def cmd_info(_args) -> int:
    cfg = DEFAULT_CONFIG
    print("default simulation configuration:")
    print(f"  SSD: {cfg.ssd.page_size} B pages x {cfg.ssd.channels} channels, "
          f"read {cfg.ssd.read_latency_us} us/page, write {cfg.ssd.write_latency_us} us/page")
    print(f"  peak bandwidth: {cfg.ssd.peak_read_bandwidth_mbps:.0f} MB/s read, "
          f"{cfg.ssd.peak_write_bandwidth_mbps:.0f} MB/s write")
    print(f"  memory: {cfg.memory.total_bytes // 1024} KiB "
          f"(sort {int(100 * cfg.memory.sort_fraction)}%, "
          f"multi-log {int(100 * cfg.memory.multilog_fraction)}%, "
          f"edge-log {int(100 * cfg.memory.edgelog_fraction)}%)")
    print(f"  records: update {cfg.records.update_bytes} B, "
          f"shard edge {cfg.records.edge_record_bytes} B")
    from .graph.datasets import dataset_table

    print("bench-scale datasets:")
    for label, n, m in dataset_table("bench"):
        print(f"  {label}: {n:,} vertices, {m:,} edges")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description="MultiLogVC reproduction command line"
    )
    sub = p.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments").set_defaults(func=cmd_list)
    runp = sub.add_parser("run", help="regenerate one experiment (or 'all')")
    runp.add_argument("experiment")
    runp.add_argument("--scale", choices=("test", "bench", "large"), default=None)
    runp.add_argument("--datasets", default=None, help="comma list, e.g. cf,yws")
    runp.add_argument("--trace", default=None, metavar="PATH",
                      help="record engine trace events and write them as JSONL")
    runp.add_argument("--csv", default=None, metavar="PATH",
                      help="export the experiment table(s) as CSV")
    runp.add_argument("--json", default=None, metavar="PATH",
                      help="export the experiment table(s) as JSON")
    runp.set_defaults(func=cmd_run)
    sub.add_parser("info", help="show configuration and datasets").set_defaults(func=cmd_info)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
