"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show the available experiments (paper tables/figures + ablations).
``run <experiment> [...]``
    Regenerate one experiment and print its paper-style table.
``run all``
    Regenerate everything (slow at bench scale).
``info``
    Print the active configuration and dataset shapes.

Examples::

    python -m repro list
    python -m repro run fig5 --scale test
    python -m repro run fig6 --scale bench --datasets cf
    python -m repro info
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .config import DEFAULT_CONFIG
from .experiments import ALL_EXPERIMENTS
from .experiments.common import ExperimentResult


def _print_results(results) -> None:
    if isinstance(results, ExperimentResult):
        results = [results]
    for r in results:
        print(r.render())
        print()


def cmd_list(_args) -> int:
    print("available experiments:")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    return 0


def cmd_run(args) -> int:
    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(ALL_EXPERIMENTS)} or 'all'", file=sys.stderr)
        return 2
    for name in names:
        fn = ALL_EXPERIMENTS[name]
        kwargs = {}
        if args.scale:
            kwargs["scale"] = args.scale
        if args.datasets and name not in ("fig5", "ablations", "table1"):
            kwargs["datasets"] = tuple(args.datasets.split(","))
        t0 = time.time()
        results = fn(**kwargs)
        _print_results(results)
        print(f"[{name} regenerated in {time.time() - t0:.1f}s]\n")
    return 0


def cmd_info(_args) -> int:
    cfg = DEFAULT_CONFIG
    print("default simulation configuration:")
    print(f"  SSD: {cfg.ssd.page_size} B pages x {cfg.ssd.channels} channels, "
          f"read {cfg.ssd.read_latency_us} us/page, write {cfg.ssd.write_latency_us} us/page")
    print(f"  peak bandwidth: {cfg.ssd.peak_read_bandwidth_mbps:.0f} MB/s read, "
          f"{cfg.ssd.peak_write_bandwidth_mbps:.0f} MB/s write")
    print(f"  memory: {cfg.memory.total_bytes // 1024} KiB "
          f"(sort {int(100 * cfg.memory.sort_fraction)}%, "
          f"multi-log {int(100 * cfg.memory.multilog_fraction)}%, "
          f"edge-log {int(100 * cfg.memory.edgelog_fraction)}%)")
    print(f"  records: update {cfg.records.update_bytes} B, "
          f"shard edge {cfg.records.edge_record_bytes} B")
    from .graph.datasets import dataset_table

    print("bench-scale datasets:")
    for label, n, m in dataset_table("bench"):
        print(f"  {label}: {n:,} vertices, {m:,} edges")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description="MultiLogVC reproduction command line"
    )
    sub = p.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments").set_defaults(func=cmd_list)
    runp = sub.add_parser("run", help="regenerate one experiment (or 'all')")
    runp.add_argument("experiment")
    runp.add_argument("--scale", choices=("test", "bench", "large"), default=None)
    runp.add_argument("--datasets", default=None, help="comma list, e.g. cf,yws")
    runp.set_defaults(func=cmd_run)
    sub.add_parser("info", help="show configuration and datasets").set_defaults(func=cmd_info)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
