"""Superstep I/O planner: plan factory, read-ahead, and ``io.*`` tallies.

:class:`SuperstepIOPlanner` is the engine-facing half of the planning
layer (DESIGN.md §13).  It decides whether groups get an
:class:`~repro.io.plan.IOPlan` at all (``io_plan`` knob), predicts the
*next* group's page demand for cache-aware read-ahead, and owns the
cumulative counters behind the ``io.*`` gauges and the
``io_plan_stats`` trace kind.

Counter discipline mirrors the rest of the engine: per-group
:class:`~repro.io.plan.PlanOutcome` records ride on the prepared group
and are folded in via :meth:`apply` at the commit point, in canonical
group order -- so the tallies (floats included) are bit-identical for
any pipeline depth or worker count.

Read-ahead reuses the activity knowledge the engine already maintains:
a vertex is processed by the next group only if it is in the active
tracker's current set (self-activated last superstep or the destination
of a logged message), so slicing the sorted active array to the next
group's vertex span *is* the history-based prediction -- exact under
synchronous delivery, a superset under async.  Predicted vertices map
to CSR pages the same way the loader will map them one group later;
pages the edge log covers or that are already cache-resident are
skipped, and the remainder is prefetched into the CLOCK cache within
``readahead_pages`` and the cache's existing byte budget.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .plan import IOPlan, PlanOutcome

#: Valid ``io_plan`` knob values, in increasing ambition.
IO_PLAN_MODES = ("off", "coalesce", "coalesce+readahead")


class SuperstepIOPlanner:
    """Per-run holder of planning mode, read-ahead logic and tallies."""

    def __init__(
        self,
        device,
        cache=None,
        mode: str = "coalesce",
        readahead_pages: int = 64,
    ) -> None:
        if mode not in IO_PLAN_MODES or mode == "off":
            raise ValueError(f"planner mode must be an active io_plan value, got {mode!r}")
        self.device = device
        self.cache = cache
        self.mode = mode
        self.readahead_budget = max(0, int(readahead_pages))
        # Cumulative (monotonic) tallies, updated only at commit points.
        self.plans = 0
        self.demand_pages = 0
        self.cache_hit_pages = 0
        self.batches_folded = 0
        self.extents = 0
        self.extent_pages = 0
        self.scattered_pages = 0
        self.waves = 0
        self.time_us = 0.0
        self.saved_us = 0.0
        self.readahead_pages = 0
        self.readahead_time_us = 0.0

    # -- mode -------------------------------------------------------------

    @property
    def readahead_enabled(self) -> bool:
        """Prefetch only with a cache to prefetch *into*; without one
        ``coalesce+readahead`` degrades to plain ``coalesce``."""
        return (
            self.mode == "coalesce+readahead"
            and self.cache is not None
            and self.readahead_budget > 0
        )

    def new_plan(self) -> IOPlan:
        return IOPlan(self.device)

    # -- read-ahead -------------------------------------------------------

    def collect_readahead(
        self,
        plan: IOPlan,
        storage,
        edgelog,
        active_ids: np.ndarray,
        next_lo: int,
        next_hi: int,
        need_vals: bool,
    ) -> None:
        """Queue prefetches for the next group's predicted page demand.

        ``active_ids`` is the superstep's sorted active-vertex array;
        its slice over ``[next_lo, next_hi)`` predicts the vertices the
        next group will load (see module docstring).  Page order is
        deterministic: per interval ascending, rowptr then colidx then
        values, then the edge log's covering pages, truncated to the
        ``readahead_pages`` budget.
        """
        if not self.readahead_enabled:
            return
        verts = active_ids[
            np.searchsorted(active_ids, next_lo) : np.searchsorted(active_ids, next_hi)
        ]
        if verts.size == 0:
            return
        budget = self.readahead_budget
        cache = self.cache

        def queue(file, page_ids: np.ndarray) -> int:
            nonlocal budget
            if budget <= 0 or page_ids.size == 0:
                return 0
            fresh = page_ids[
                [(file.name, int(p)) not in cache for p in page_ids]
            ][:budget]
            if fresh.size == 0:
                return 0
            plan.add_readahead(file, fresh)
            budget -= int(fresh.size)
            return int(fresh.size)

        bounds = storage.intervals.boundaries
        cut = np.searchsorted(verts, bounds)
        hit_verts = []
        for i in range(storage.n_intervals):
            s, e = cut[i], cut[i + 1]
            if s == e:
                continue
            v = verts[s:e]
            files = storage.interval_files(i)
            local, starts, stops = storage.local_ranges(i, v)
            queue(files.rowptr, files.rowptr.pages_for(local, local + 2)[0])
            if edgelog is not None:
                hit = edgelog.contains_many(v)
                if hit.any():
                    hit_verts.append(v[hit])
                miss = ~hit
                starts, stops = starts[miss], stops[miss]
            queue(files.colidx, files.colidx.pages_for(starts, stops)[0])
            if need_vals and files.values is not None:
                queue(files.values, files.values.pages_for(starts, stops)[0])
            if budget <= 0:
                break
        if edgelog is not None and hit_verts and budget > 0:
            elog_file = getattr(edgelog, "_file_cur", None)
            if elog_file is not None:
                queue(elog_file, edgelog.pages_of(np.concatenate(hit_verts)))

    # -- tallies ----------------------------------------------------------

    def apply(self, outcome: Optional[PlanOutcome]) -> None:
        """Fold one committed group's outcome into the run tallies."""
        if outcome is None:
            return
        self.plans += 1
        self.demand_pages += outcome.demand_pages
        self.cache_hit_pages += outcome.cache_hit_pages
        self.batches_folded += outcome.batches_folded
        self.extents += outcome.extents
        self.extent_pages += outcome.extent_pages
        self.scattered_pages += outcome.scattered_pages
        self.waves += outcome.waves
        self.time_us += outcome.time_us
        self.saved_us += outcome.saved_us
        self.readahead_pages += outcome.readahead_pages
        self.readahead_time_us += outcome.readahead_time_us

    def snapshot(self) -> dict:
        """The ``io_plan_stats`` trace payload (all fields monotonic)."""
        return {
            "mode": self.mode,
            "plans": int(self.plans),
            "demand_pages": int(self.demand_pages),
            "cache_hit_pages": int(self.cache_hit_pages),
            "batches_folded": int(self.batches_folded),
            "extents": int(self.extents),
            "extent_pages": int(self.extent_pages),
            "scattered_pages": int(self.scattered_pages),
            "waves": int(self.waves),
            "time_us": round(self.time_us, 6),
            "saved_us": round(self.saved_us, 6),
            "readahead_pages": int(self.readahead_pages),
            "readahead_time_us": round(self.readahead_time_us, 6),
        }

    def register_metrics(self, metrics) -> None:
        """Register the ``io.*`` gauges over this planner's tallies."""
        metrics.gauge("io.plans", lambda: self.plans)
        metrics.gauge("io.demand_pages", lambda: self.demand_pages)
        metrics.gauge("io.cache_hit_pages", lambda: self.cache_hit_pages)
        metrics.gauge("io.batches_folded", lambda: self.batches_folded)
        metrics.gauge("io.extents", lambda: self.extents)
        metrics.gauge("io.extent_pages", lambda: self.extent_pages)
        metrics.gauge("io.scattered_pages", lambda: self.scattered_pages)
        metrics.gauge("io.waves", lambda: self.waves)
        metrics.gauge("io.time_us", lambda: self.time_us)
        metrics.gauge("io.saved_us", lambda: self.saved_us)
        metrics.gauge("io.readahead_pages", lambda: self.readahead_pages)
        metrics.gauge("io.readahead_time_us", lambda: self.readahead_time_us)
