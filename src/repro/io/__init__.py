"""Superstep I/O planning: demand collection, extent coalescing,
channel-balanced dispatch waves and cache-aware read-ahead
(DESIGN.md §13)."""

from .plan import KLASS_READAHEAD, IOPlan, PlanOutcome, balance_channels, split_runs
from .planner import IO_PLAN_MODES, SuperstepIOPlanner

__all__ = [
    "IOPlan",
    "IO_PLAN_MODES",
    "KLASS_READAHEAD",
    "PlanOutcome",
    "SuperstepIOPlanner",
    "balance_channels",
    "split_runs",
]
