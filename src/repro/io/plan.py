"""Per-group I/O demand plan: collect, coalesce, dispatch (DESIGN.md §13).

The seed engine's read paths each submit their own device batch: every
interval's rowptr ranges, colidx ranges, value ranges and multi-log
``read_all`` pay a separate ``batch_overhead_us`` and a separate
``max_over_channels`` latency term.  FlashGraph's user-task I/O layer
closes exactly this gap by merging adjacent requests before they reach
the SSD; :class:`IOPlan` is the simulation-side equivalent.

A plan lives for one prepared group.  Read paths call :meth:`add`
*instead of* charging the device; the plan snapshots each path's page
demand (cache-filtered at add time, in the same order the uncoalesced
reads would have consulted the cache, and with the channel placement
captured before any later truncate can move it).  :meth:`execute` then
charges the whole group's demand as one submission per storage class:

* runs of adjacent pages in the same file become **extents**, charged
  through :meth:`SimulatedSSD.read_plan`'s sequential path (contiguous
  pages are interspersed across channels, so an extent of ``L`` pages
  costs ``ceil(L/C)`` latencies -- the same cost
  ``sequential_read_time`` models);
* the remaining scattered pages are reordered **channel-round-robin**
  and dispatched in bounded waves, so each wave's per-channel queue
  depths differ by at most one given the demand's channel multiset.

Because per-class page counts are preserved exactly (only the batching
changes), ``pages_read`` and per-class stats stay bit-identical to the
unplanned engine; only batch counts and simulated time shrink.

Determinism: a plan is built and executed inside one ``prepare()``
call, under the device's deferred-charge queue whenever the pipeline or
the parallel executor is active, so the coalesced charges commit at the
canonical group-order point exactly like uncoalesced ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import StorageError

#: Storage class the read-ahead prefetcher charges under.  Keeping it
#: distinct from the demand classes means ``coalesce`` mode's per-class
#: page counts stay bit-identical to planner-off mode.
KLASS_READAHEAD = "readahead"

#: Minimum run length (in adjacent pages) promoted to an extent; a
#: single page gains nothing from the sequential path.
MIN_EXTENT_PAGES = 2

#: Scattered-dispatch bound: one wave submits at most this many pages
#: per channel, modelling a bounded per-channel submission queue.
WAVE_QUEUE_DEPTH = 64


def split_runs(page_ids: np.ndarray) -> List[Tuple[int, int]]:
    """Split sorted page ids into maximal runs ``(first_page, length)``.

    Input must be sorted and unique (every read path in the tree hands
    over sorted unique page ids); duplicates would silently merge.
    """
    ids = np.asarray(page_ids, dtype=np.int64)
    if ids.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(ids) != 1)
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks + 1, [ids.size]))
    return [(int(ids[a]), int(b - a)) for a, b in zip(starts, stops)]


def balance_order(channels: np.ndarray) -> np.ndarray:
    """The permutation :func:`balance_channels` applies.

    Returned as indices into the input so a device-array plan can
    reorder its per-page device vector identically to the channel
    vector (the two must stay aligned through wave slicing).
    """
    ch = np.asarray(channels, dtype=np.int64)
    if ch.size <= 1:
        return np.arange(ch.size, dtype=np.int64)
    order = np.argsort(ch, kind="stable")
    sorted_ch = ch[order]
    first = np.searchsorted(sorted_ch, sorted_ch)  # each channel's first page
    rank = np.arange(ch.size, dtype=np.int64) - first
    return order[np.lexsort((sorted_ch, rank))]


def balance_channels(channels: np.ndarray) -> np.ndarray:
    """Reorder a channel vector round-robin across channels.

    Stable-sorts by channel, ranks each page within its channel's queue,
    then orders by ``(rank, channel)``: position ``k`` of the output
    holds the ``k // n_channels``-th page of each channel in turn.  Any
    contiguous wave cut from the result has per-channel queue depths
    within one of the best achievable for the given channel multiset.
    """
    ch = np.asarray(channels, dtype=np.int64)
    return ch[balance_order(ch)]


@dataclass
class PlanOutcome:
    """What one executed plan did, for attribution and the ``io.*`` tallies.

    ``times`` maps each demand storage class to the simulated time its
    waves charged, so callers can route the wave cost back to the same
    accumulators the uncoalesced reads would have fed (multi-log unit,
    edge-log tallies, load report).  Read-ahead time is kept separate
    under :data:`KLASS_READAHEAD`.
    """

    demand_pages: int = 0
    cache_hit_pages: int = 0
    batches_folded: int = 0
    extents: int = 0
    extent_pages: int = 0
    scattered_pages: int = 0
    waves: int = 0
    time_us: float = 0.0
    baseline_time_us: float = 0.0
    readahead_pages: int = 0
    readahead_time_us: float = 0.0
    times: Dict[str, float] = field(default_factory=dict)

    def time_of(self, klass: str) -> float:
        return self.times.get(klass, 0.0)

    @property
    def saved_us(self) -> float:
        """Simulated time the coalesced dispatch saved vs per-path batches.

        Compares demand waves only (read-ahead is extra, speculative
        I/O, not a rebatching of existing demand).  Never negative:
        merging batches drops whole ``batch_overhead_us`` payments and a
        max-of-sums never exceeds the sum-of-maxes.
        """
        return self.baseline_time_us - (self.time_us - self.readahead_time_us)


class IOPlan:
    """Collects one group's page demand, then charges it coalesced."""

    def __init__(self, device) -> None:
        self.device = device
        # One entry per read path:
        # (klass, channel_offset, miss page ids, per-page devices).
        # The device vector is None on a single device (DESIGN.md §14).
        self._demand: List[Tuple[str, int, np.ndarray, Optional[np.ndarray]]] = []
        # Read-ahead queue: (file, page ids) admitted+pinned post-charge.
        self._readahead: List[Tuple[Any, np.ndarray]] = []
        self._executed = False
        self._demand_pages = 0
        self._cache_hit_pages = 0

    # -- demand collection ------------------------------------------------

    def add(self, file, page_ids: np.ndarray, klass: Optional[str] = None) -> float:
        """Queue one read path's demand instead of charging the device.

        Mirrors :meth:`SimFileBase._charge_read` exactly: the cache is
        consulted here, at add time, in the same order the uncoalesced
        read would have -- so hit/miss sequences (and therefore charged
        page counts) are bit-identical to planner-off mode -- and the
        miss pages' channel placement is captured via the file's current
        ``channel_offset``, immune to a later truncate of the same file.

        Returns 0.0: the wave cost is attributed by the caller from
        :class:`PlanOutcome` after :meth:`execute`.
        """
        if self._executed:
            raise StorageError("IOPlan.add() after execute()")
        ids = np.asarray(page_ids, dtype=np.int64)
        self._demand_pages += int(ids.size)
        cache = file.cache
        if cache is not None and ids.size:
            miss = cache.access(file.name, ids)
            self._cache_hit_pages += int(ids.size - np.count_nonzero(miss))
            ids = ids[miss]
        if ids.size:
            self._demand.append(
                (klass or file.klass, int(file.channel_offset), ids, file.devices_of(ids))
            )
        return 0.0

    def add_readahead(self, file, page_ids: np.ndarray) -> None:
        """Queue a prefetch: charged under :data:`KLASS_READAHEAD`, then
        admitted into the file's cache (pinned until the whole prefetch
        set is resident, so a later admission cannot evict an earlier
        one)."""
        if self._executed:
            raise StorageError("IOPlan.add_readahead() after execute()")
        ids = np.asarray(page_ids, dtype=np.int64)
        if ids.size:
            self._readahead.append((file, ids))

    # -- execution --------------------------------------------------------

    def _dispatch(
        self,
        demand: List[Tuple[str, int, np.ndarray, Optional[np.ndarray]]],
        outcome: PlanOutcome,
    ) -> Dict[str, float]:
        """Charge one klass-ordered wave set for ``demand``; returns times.

        Per-page device vectors (device-array runs) stay aligned with
        the channel vectors through run splitting, the round-robin
        balance permutation and wave slicing, so each wave's per-device
        overlay times -- and a device-scoped fault plan's view -- see
        exactly the pages that wave carries.
        """
        device = self.device
        by_klass: Dict[str, Tuple[List[Tuple[int, int]], List, List[np.ndarray], List]] = {}
        for klass, offset, ids, devs in demand:
            extents, extent_devs, scattered, scattered_devs = by_klass.setdefault(
                klass, ([], [], [], [])
            )
            outcome.batches_folded += 1
            outcome.baseline_time_us += device.read_batch_time(
                (ids + offset) % device.channels
            )
            if ids.size:
                breaks = np.flatnonzero(np.diff(ids) != 1)
                starts = np.concatenate(([0], breaks + 1))
                stops = np.concatenate((breaks + 1, [ids.size]))
            else:
                starts = stops = np.empty(0, dtype=np.int64)
            singles = []
            for a, b in zip(starts, stops):
                length = int(b - a)
                if length >= MIN_EXTENT_PAGES:
                    extents.append((int((ids[a] + offset) % device.channels), length))
                    extent_devs.append(None if devs is None else devs[a:b])
                    outcome.extents += 1
                    outcome.extent_pages += length
                else:
                    singles.append(int(a))
            if singles:
                sel = np.asarray(singles, dtype=np.int64)
                scattered.append((ids[sel] + offset) % device.channels)
                scattered_devs.append(None if devs is None else devs[sel])
        times: Dict[str, float] = {}
        wave_cap = device.channels * WAVE_QUEUE_DEPTH
        for klass in sorted(by_klass):
            extents, extent_devs, scattered, scattered_devs = by_klass[klass]
            dv = None
            if scattered:
                ch = np.concatenate(scattered)
                perm = balance_order(ch)
                ch = ch[perm]
                if any(d is not None for d in scattered_devs):
                    dv = np.concatenate(scattered_devs)[perm]
            else:
                ch = np.empty(0, dtype=np.int64)
            outcome.scattered_pages += int(ch.size)
            if not any(d is not None for d in extent_devs):
                extent_devs = None
            t = 0.0
            # First wave carries every extent plus the head of the
            # scattered queue; overflow drains in further bounded waves.
            t += device.read_plan(
                klass, extents, ch[:wave_cap],
                extent_devices=extent_devs,
                scattered_devices=None if dv is None else dv[:wave_cap],
            )
            outcome.waves += 1
            for at in range(wave_cap, ch.size, wave_cap):
                t += device.read_plan(
                    klass, [], ch[at : at + wave_cap],
                    scattered_devices=None if dv is None else dv[at : at + wave_cap],
                )
                outcome.waves += 1
            times[klass] = t
        return times

    def execute(self) -> PlanOutcome:
        """Charge the collected demand; returns the attribution record.

        Waves are charged in sorted-klass order (deterministic), then
        the read-ahead wave, then prefetched pages are admitted into
        their caches under a pin that is only released once the whole
        prefetch set is resident.
        """
        if self._executed:
            raise StorageError("IOPlan.execute() called twice")
        self._executed = True
        outcome = PlanOutcome(
            demand_pages=self._demand_pages, cache_hit_pages=self._cache_hit_pages
        )
        outcome.times = self._dispatch(self._demand, outcome)
        if self._readahead:
            ra_demand = [
                (KLASS_READAHEAD, int(f.channel_offset), ids, f.devices_of(ids))
                for f, ids in self._readahead
            ]
            ra_outcome = PlanOutcome()  # keep demand tallies separate
            outcome.readahead_time_us = self._dispatch(ra_demand, ra_outcome).get(
                KLASS_READAHEAD, 0.0
            )
            outcome.waves += ra_outcome.waves
            pinned = []
            for f, ids in self._readahead:
                if f.cache is None:
                    continue
                f.cache.admit(f.name, ids)
                f.cache.pin(f.name, ids)
                pinned.append((f.cache, f.name, ids))
                outcome.readahead_pages += int(ids.size)
            for cache, name, ids in pinned:
                cache.unpin(name, ids)
        outcome.time_us = sum(outcome.times.values()) + outcome.readahead_time_us
        return outcome
