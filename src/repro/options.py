"""Unified engine options for the :func:`repro.run` facade.

The four engines historically diverged in constructor signatures
(``MultiLogVC(..., mode=, enable_edgelog=, enable_fusing=,
min_intervals=, intervals=)`` vs ``GraFBoost(..., adapted=,
merge_fanout=)`` vs bare ``GraphChi`` vs ``GridGraph(...,
intervals=)``).  :class:`EngineOptions` consolidates every knob into one
frozen dataclass so any workload runs on any engine through the same
call::

    repro.run(graph, program, engine="grafboost",
              options=EngineOptions(adapted=True))

Each engine validates that the non-default options it received actually
apply to it (asking GraphChi for ``adapted=True`` is an error, not a
silent no-op).  The old per-engine keyword arguments were deprecated in
the options consolidation and are **removed** as of API v1: passing one
raises :class:`~repro.errors.EngineError` with a migration hint (see
README "v1 API migration").
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Optional

from .config import IO_PLAN_MODES, PLACEMENTS
from .errors import EngineError

if TYPE_CHECKING:  # circular-import guard; only for annotations
    from .config import SimConfig
    from .graph.partition import VertexIntervals
    from .ssd.filesystem import SimFS

#: Sentinel distinguishing "not passed" from an explicit value in the
#: deprecated per-engine keyword arguments.
_UNSET = object()


@dataclass(frozen=True)
class EngineOptions:
    """Every engine-tuning knob, consolidated.

    Only the subset relevant to the chosen engine may differ from the
    defaults; see :data:`RELEVANT_OPTIONS`.

    mode:
        ``"sync"`` (default) or ``"async"`` computation model
        (MultiLogVC §V-F).
    enable_edgelog:
        Toggle for the §V-C edge-log optimizer (MultiLogVC ablations).
    enable_fusing:
        Toggle for §V-A2 interval fusing (MultiLogVC ablations).
    min_intervals:
        Force at least this many vertex intervals (MultiLogVC
        testing/ablation).
    intervals:
        Explicit vertex-interval partition overriding the automatic
        sizing rule (MultiLogVC and GridGraph).
    adapted:
        GraFBoost §VIII adaptation: keep all updates, no combine.
    merge_fanout:
        Width of GraFBoost's external merge (16-way in ISCA'18).
    grid_p:
        GridGraph grid dimension: partition vertices into ``p`` uniform
        intervals (``p x p`` edge blocks) instead of the edge-volume
        sizing rule.
    checkpoint_every:
        Write a crash-consistent checkpoint every N supersteps
        (MultiLogVC only; 0 disables checkpointing).  See
        :mod:`repro.recovery` and DESIGN.md §8.
    checkpoint_mode:
        ``"full"`` (default) snapshots the whole value vector each
        time; ``"incremental"`` stores value deltas against the
        previous checkpoint (resolved back to a full baseline at load).
    cache_policy:
        DRAM page-cache policy between the engine and the simulated
        SSD: ``None`` (default) keeps the config's setting, ``"none"``
        forces the cache off, ``"clock"`` enables it (DESIGN.md §10).
        Applies to every engine -- the cache lives in the shared file
        layer, not in any one engine.
    cache_bytes:
        Explicit cache budget in bytes; defaults to the config's
        ``memory.cache_bytes_default`` when the cache is enabled.
    num_workers:
        Worker threads for MultiLogVC's deterministic parallel interval
        executor (DESIGN.md §11).  ``None`` (default) inherits the
        config's ``num_workers``; results are bit-identical at any
        count.
    io_plan:
        Superstep I/O planner mode (DESIGN.md §13): ``None`` (default)
        inherits the config's ``io_plan``; ``"off"`` forces the seed's
        per-path batches; ``"coalesce"`` enables extent coalescing and
        channel-balanced dispatch waves; ``"coalesce+readahead"``
        additionally prefetches the predicted next group's pages into
        the CLOCK page cache (no-op without a cache).  Values and
        records are bit-identical in every mode.
    readahead_pages:
        Per-superstep page budget for the planner's read-ahead;
        ``None`` inherits the config's ``readahead_pages``.
    num_devices:
        Size of the simulated SSD device array (DESIGN.md §14).
        ``None`` (default) inherits the config's ``num_devices``;
        values, records and semantic traces are bit-identical at any
        count -- only the ``device.*`` overlay accounting changes.
    placement:
        Device-array placement policy: ``None`` (default) inherits the
        config's ``placement``; ``"stripe"`` round-robins
        channel-intersperse cycles across devices; ``"affinity"``
        additionally pins interval-affine logs whole to
        ``interval % num_devices``.
    recompute:
        Streaming-update recompute policy (DESIGN.md §12), consumed by
        :class:`~repro.stream.StreamSession` -- not by the engines
        themselves, so the session strips it back to the default before
        constructing an engine.  ``"auto"`` (default) warm-starts when
        the program supports it and the delta fraction is under
        ``SimConfig.stream_max_delta_fraction``; ``"incremental"``
        warm-starts whenever the program supports it; ``"full"`` always
        recomputes from scratch.
    """

    mode: str = "sync"
    enable_edgelog: bool = True
    enable_fusing: bool = True
    min_intervals: int = 1
    intervals: Optional["VertexIntervals"] = None
    adapted: bool = False
    merge_fanout: int = 16
    grid_p: Optional[int] = None
    checkpoint_every: int = 0
    checkpoint_mode: str = "full"
    cache_policy: Optional[str] = None
    cache_bytes: Optional[int] = None
    num_workers: Optional[int] = None
    io_plan: Optional[str] = None
    readahead_pages: Optional[int] = None
    num_devices: Optional[int] = None
    placement: Optional[str] = None
    recompute: str = "auto"

    def replace(self, **changes) -> "EngineOptions":
        """Return a copy with the given fields replaced.

        Sugar over :func:`dataclasses.replace` so callers tweaking a
        shared base options object do not need the dataclasses import::

            base = EngineOptions(checkpoint_every=4)
            fast = base.replace(num_workers=8)
        """
        return dataclasses.replace(self, **changes)

    def validate_for(self, engine: str, fs: Optional["SimFS"] = None) -> None:
        """Reject non-default options the named engine does not consume.

        ``fs`` is the explicit file system handed to the engine, if any:
        the page cache is constructed by :class:`~repro.ssd.SimFS` from
        its config, so cache knobs combined with an explicit ``fs``
        would be silently ignored -- that combination is an error here.
        """
        relevant = RELEVANT_OPTIONS.get(engine)
        if relevant is None:
            raise EngineError(
                f"unknown engine {engine!r}; choose from {sorted(RELEVANT_OPTIONS)}"
            )
        defaults = EngineOptions()
        stray = [
            f.name
            for f in dataclasses.fields(self)
            if f.name not in relevant
            and getattr(self, f.name) != getattr(defaults, f.name)
        ]
        if stray:
            raise EngineError(
                f"option(s) {', '.join(stray)} do not apply to engine {engine!r} "
                f"(it honours: {', '.join(sorted(relevant)) or 'none'})"
            )
        if fs is not None and (self.cache_policy is not None or self.cache_bytes is not None):
            raise EngineError(
                "cache_policy/cache_bytes cannot be combined with an explicit fs; "
                "enable the cache on the SimConfig the fs was built from instead"
            )
        if fs is not None and (self.num_devices is not None or self.placement is not None):
            raise EngineError(
                "num_devices/placement cannot be combined with an explicit fs; "
                "the device array is constructed by SimFS from its config -- set "
                "them on the SimConfig the fs was built from instead"
            )
        if self.mode not in ("sync", "async"):
            raise EngineError(f"mode must be 'sync' or 'async', got {self.mode!r}")
        if self.merge_fanout < 2:
            raise EngineError("merge_fanout must be >= 2")
        if self.min_intervals < 1:
            raise EngineError("min_intervals must be >= 1")
        if self.grid_p is not None and self.grid_p < 1:
            raise EngineError("grid_p must be >= 1")
        if self.checkpoint_every < 0:
            raise EngineError("checkpoint_every must be >= 0")
        if self.checkpoint_mode not in ("full", "incremental"):
            raise EngineError(
                f"checkpoint_mode must be 'full' or 'incremental', got {self.checkpoint_mode!r}"
            )
        if self.cache_policy not in (None, "none", "clock"):
            raise EngineError(
                f"cache_policy must be 'none' or 'clock', got {self.cache_policy!r}"
            )
        if self.cache_bytes is not None and self.cache_bytes <= 0:
            raise EngineError("cache_bytes must be positive")
        if self.num_workers is not None and self.num_workers < 1:
            raise EngineError("num_workers must be >= 1")
        if self.io_plan is not None and self.io_plan not in IO_PLAN_MODES:
            raise EngineError(
                f"io_plan must be one of {IO_PLAN_MODES}, got {self.io_plan!r}"
            )
        if self.readahead_pages is not None and self.readahead_pages < 0:
            raise EngineError("readahead_pages must be non-negative")
        if self.num_devices is not None and self.num_devices < 1:
            raise EngineError("num_devices must be >= 1")
        if self.placement is not None and self.placement not in PLACEMENTS:
            raise EngineError(
                f"placement must be one of {PLACEMENTS}, got {self.placement!r}"
            )
        if self.recompute not in ("auto", "incremental", "full"):
            raise EngineError(
                f"recompute must be 'auto', 'incremental' or 'full', got {self.recompute!r}"
            )


#: The page cache lives in the shared SSD file layer, so its knobs
#: apply to every out-of-core engine.  The in-memory oracle performs no
#: simulated I/O and is excluded.
_CACHE_OPTIONS = frozenset({"cache_policy", "cache_bytes"})

#: The superstep I/O planner (DESIGN.md §13) is wired through the
#: MultiLogVC read paths only; the comparison engines keep the seed's
#: per-path batches.
_IO_PLAN_OPTIONS = frozenset({"io_plan", "readahead_pages"})

#: The device array (DESIGN.md §14) lives below the file layer, so like
#: the cache its knobs apply to every out-of-core engine; the in-memory
#: oracle performs no simulated I/O and is excluded.
_DEVICE_OPTIONS = frozenset({"num_devices", "placement"})

#: Which :class:`EngineOptions` fields each engine consumes.
RELEVANT_OPTIONS: Dict[str, FrozenSet[str]] = {
    "multilogvc": frozenset(
        {
            "mode",
            "enable_edgelog",
            "enable_fusing",
            "min_intervals",
            "intervals",
            "checkpoint_every",
            "checkpoint_mode",
            "num_workers",
        }
    )
    | _CACHE_OPTIONS
    | _IO_PLAN_OPTIONS
    | _DEVICE_OPTIONS,
    "graphchi": _CACHE_OPTIONS | _DEVICE_OPTIONS,
    # The in-memory golden oracle (repro.verify) has no tuning knobs.
    "oracle": frozenset(),
    "grafboost": frozenset({"adapted", "merge_fanout"}) | _CACHE_OPTIONS | _DEVICE_OPTIONS,
    "gridgraph": frozenset({"intervals", "grid_p"}) | _CACHE_OPTIONS | _DEVICE_OPTIONS,
    "xstream": frozenset({"intervals", "grid_p"}) | _CACHE_OPTIONS | _DEVICE_OPTIONS,
}


def apply_config_options(
    config: "SimConfig", options: EngineOptions, fs: Optional["SimFS"]
) -> "SimConfig":
    """Fold the options' config-level knobs (cache, workers) into ``config``.

    The fs-conflict check lives in :meth:`EngineOptions.validate_for`
    (which every engine runs via :func:`resolve_options` before calling
    this), so this helper only folds.  ``fs`` is accepted for signature
    stability and as a belt-and-braces guard for direct callers.
    """
    if options.cache_policy is not None or options.cache_bytes is not None:
        if fs is not None:
            raise EngineError(
                "cache_policy/cache_bytes cannot be combined with an explicit fs; "
                "enable the cache on the SimConfig the fs was built from instead"
            )
        policy = options.cache_policy if options.cache_policy is not None else "clock"
        config = config.with_cache(policy=policy, cache_bytes=options.cache_bytes)
    if options.num_workers is not None:
        config = config.with_workers(options.num_workers)
    if options.io_plan is not None or options.readahead_pages is not None:
        config = config.with_io_plan(
            options.io_plan if options.io_plan is not None else config.io_plan,
            readahead_pages=options.readahead_pages,
        )
    if options.num_devices is not None or options.placement is not None:
        if fs is not None:
            raise EngineError(
                "num_devices/placement cannot be combined with an explicit fs; "
                "set them on the SimConfig the fs was built from instead"
            )
        config = config.with_devices(options.num_devices, options.placement)
    return config


def resolve_options(
    engine: str,
    options: Optional[EngineOptions],
    fs: Optional["SimFS"] = None,
    **legacy,
) -> EngineOptions:
    """Validate (and default) the options object for ``engine``.

    ``legacy`` catches the pre-v1 per-engine keyword arguments
    (``mode=``, ``enable_edgelog=``, ``adapted=``, ...).  They were
    deprecated when :class:`EngineOptions` consolidated the knobs and
    are removed as of API v1: passing any real value (anything but the
    :data:`_UNSET` sentinel) raises :class:`~repro.errors.EngineError`
    with a migration hint.
    """
    passed = {k: v for k, v in legacy.items() if v is not _UNSET}
    if passed:
        ks = sorted(passed)
        raise EngineError(
            f"per-engine keyword argument(s) {', '.join(ks)} were removed in "
            f"API v1; pass options=EngineOptions({', '.join(f'{k}=...' for k in ks)}) "
            f"instead (or use repro.run(..., options=...))"
        )
    if options is None:
        options = EngineOptions()
    options.validate_for(engine, fs=fs)
    return options
