"""Exception hierarchy for the MultiLogVC reproduction.

All errors raised by this package derive from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Subclasses are
grouped by subsystem (configuration, storage substrate, graph formats,
engine runtime, user vertex programs).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigError(ReproError):
    """Invalid or inconsistent simulation configuration."""


class StorageError(ReproError):
    """Misuse of the simulated SSD substrate (bad page id, missing file, ...)."""


class BudgetExceededError(ReproError):
    """A component tried to use more host memory than its budget allows."""


class GraphFormatError(ReproError):
    """Malformed graph input (bad CSR invariants, out-of-range vertex ids)."""


class EngineError(ReproError):
    """Internal engine invariant violation or invalid run-time request."""


class ProgramError(ReproError):
    """A user vertex program violated the vertex-centric contract.

    Examples: sending a message to a vertex id outside the graph, writing
    edge weights without declaring ``mutates_weights``, or mutating graph
    structure from a program that does not buffer its updates.
    """


class InjectedFaultError(StorageError):
    """A simulated SSD operation failed because an injected fault fired.

    Raised for hard device errors and for transient errors whose
    retry-with-backoff budget was exhausted (see
    :mod:`repro.ssd.faults`).  Carries enough context to tell *what*
    failed; the engines deliberately do not catch it -- a failed page
    access with no retry budget left is unrecoverable without a
    checkpoint.
    """

    def __init__(self, message: str, *, op: str = "?", klass: str = "?", channel: int = -1) -> None:
        super().__init__(message)
        self.op = op
        self.klass = klass
        self.channel = channel


class SimulatedCrashError(ReproError):
    """Simulated power loss: the run stops mid-flight, state is gone.

    Raised by the fault-injection layer for ``kind="crash"`` and
    ``kind="torn"`` rules.  For torn writes, ``pages_persisted`` says
    how many pages of the interrupted batch made it to flash before the
    power cut (a strict prefix).  Recovery never inspects post-crash
    in-memory state; it rebuilds everything from the last durable
    checkpoint (see :mod:`repro.recovery`).
    """

    def __init__(self, message: str, *, pages_persisted: int = 0) -> None:
        super().__init__(message)
        self.pages_persisted = pages_persisted


class RecoveryError(ReproError):
    """Checkpoint/restore failure: no valid checkpoint, or a restored
    checkpoint is inconsistent with the run being resumed (different
    program, graph shape, interval partition, or engine options)."""
