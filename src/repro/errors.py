"""Exception hierarchy for the MultiLogVC reproduction.

All errors raised by this package derive from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Subclasses are
grouped by subsystem (configuration, storage substrate, graph formats,
engine runtime, user vertex programs).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigError(ReproError):
    """Invalid or inconsistent simulation configuration."""


class StorageError(ReproError):
    """Misuse of the simulated SSD substrate (bad page id, missing file, ...)."""


class BudgetExceededError(ReproError):
    """A component tried to use more host memory than its budget allows."""


class GraphFormatError(ReproError):
    """Malformed graph input (bad CSR invariants, out-of-range vertex ids)."""


class EngineError(ReproError):
    """Internal engine invariant violation or invalid run-time request."""


class ProgramError(ReproError):
    """A user vertex program violated the vertex-centric contract.

    Examples: sending a message to a vertex id outside the graph, writing
    edge weights without declaring ``mutates_weights``, or mutating graph
    structure from a program that does not buffer its updates.
    """
