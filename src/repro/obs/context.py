"""Ambient tracer: a scoped default picked up by engine constructors.

The CLI (and any caller driving code that constructs engines
internally, e.g. the experiment modules) cannot thread a ``tracer=``
argument through every call site.  Instead it installs an ambient
tracer for a scope::

    with use_tracer(TraceRecorder()) as tracer:
        fig5_bfs.run("test")      # every engine inside traces
    write_jsonl(tracer.events, "fig5.jsonl")

Engine constructors resolve ``tracer if tracer is not None else
current_tracer()``; outside any scope :func:`current_tracer` returns
:data:`~repro.obs.tracer.NULL_TRACER`.  The scope is a
:class:`contextvars.ContextVar`, so concurrent contexts do not leak
tracers into each other.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from .tracer import NULL_TRACER, Tracer

_current: ContextVar[Tracer] = ContextVar("repro_tracer", default=NULL_TRACER)


def current_tracer() -> Tracer:
    """The ambient tracer (the null tracer outside any scope)."""
    return _current.get()


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient default for the scope."""
    token = _current.set(tracer)
    try:
        yield tracer
    finally:
        _current.reset(token)
