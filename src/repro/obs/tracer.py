"""Structured tracing for engine runs.

A :class:`Tracer` receives typed *events* from the engines: superstep
begin/end, group plan/load/sort/process, loader page fetches by storage
class, edge-log decisions, multi-log flushes, external-sort passes
(GraFBoost), block streams (GridGraph).  Every event is stamped with

* the **simulated clock** -- storage time from the SSD device plus the
  engine's compute-meter time at the moment of emission, and
* the current **superstep index**.

The base class is a null object: ``enabled`` is False and every method
is a no-op, so engines can keep a tracer reference unconditionally and
guard only the (cheap) field construction with ``if tracer.enabled``.
That is what keeps tracing-off runs byte-identical to and as fast as
untraced runs.

Determinism contract
--------------------
Engines emit events **only on the accounting thread**, at the point
where the corresponding work lands in the serial execution order.  For
the group-prefetch pipeline that point is the deferred-charge replay
site in :meth:`repro.core.engine.MultiLogVC._superstep_loop` -- work
prepared ahead on the worker thread is traced when its I/O charges are
committed, so traces are bit-identical across pipeline depths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


#: Every event kind any engine or the device layer may emit.  Consumers
#: (``tools/validate_trace.py``, dashboards) treat an unknown kind as a
#: schema error, so additions here must accompany the emitting code.
TRACE_KINDS = frozenset(
    {
        # run lifecycle (all engines)
        "run_begin",
        "run_resume",
        "run_end",
        "superstep_begin",
        "superstep_end",
        # MultiLogVC superstep internals
        "group_plan",
        "group_load",
        "group_sort",
        "group_process",
        "edgelog_decisions",
        "mlog_rotate",
        "mlog_flush",
        # parallel interval executor (DESIGN.md §11): one event per
        # superstep when effective workers > 1, carrying run-cumulative
        # (monotonically non-decreasing) overlap counters
        "parallel_stats",
        # superstep I/O planner (DESIGN.md §13): one event per superstep
        # when ``io_plan != "off"``, carrying run-cumulative counters
        "io_plan_stats",
        # multi-SSD device array (DESIGN.md §14): one event per superstep
        # when ``num_devices > 1``, carrying run-cumulative overlay
        # counters (per-device busy clocks, serial-vs-array time)
        "device_stats",
        # recovery subsystem
        "checkpoint_write",
        "recovery_load",
        # streaming update subsystem (DESIGN.md §12): one ingest_stats
        # event per ingested/applied batch (carrying a per-session
        # monotonically increasing ``seq``), one compaction event per
        # interval compaction
        "ingest_stats",
        "compaction",
        # DRAM page cache (file layer; emitted once per superstep)
        "cache_stats",
        # SSD fault injection (device layer)
        "fault_error",
        "fault_crash",
        "fault_torn",
        "fault_retry",
        "channel_degraded",
        # baseline engines
        "shard_load",
        "vertex_chunks",
        "log_stream",
        "log_flush",
        "extsort",
        "graph_stream",
        "block_stream",
    }
)


@dataclass
class TraceEvent:
    """One emitted trace record."""

    kind: str
    #: simulated time (us) at emission: SSD storage time + compute time
    t_us: float
    #: superstep index the event belongs to (-1 outside any superstep)
    step: int
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "t_us": self.t_us, "step": self.step, **self.fields}


class Tracer:
    """Null-object tracer: zero overhead, nothing recorded."""

    __slots__ = ()

    enabled = False

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Set the simulated-time source for subsequent events."""

    def set_step(self, step: int) -> None:
        """Set the superstep index stamped on subsequent events."""

    def emit(self, kind: str, **fields: Any) -> None:
        """Record one event (no-op on the null tracer)."""

    @property
    def events(self) -> List[TraceEvent]:
        return []


#: Shared do-nothing tracer; the default everywhere.
NULL_TRACER = Tracer()


class TraceRecorder(Tracer):
    """In-memory tracer collecting :class:`TraceEvent` records."""

    __slots__ = ("_events", "_clock", "_step")

    enabled = True

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._clock: Optional[Callable[[], float]] = None
        self._step = -1

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def set_step(self, step: int) -> None:
        self._step = step

    def emit(self, kind: str, **fields: Any) -> None:
        t = self._clock() if self._clock is not None else 0.0
        self._events.append(TraceEvent(kind, t, self._step, fields))

    @property
    def events(self) -> List[TraceEvent]:
        return self._events
