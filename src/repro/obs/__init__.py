"""Engine observability: structured tracing + metrics registry.

Two independent, individually-optional instruments threaded through all
four engines (MultiLogVC, GraphChi, GraFBoost, GridGraph/X-Stream):

* :class:`Tracer` / :class:`TraceRecorder` -- typed event stream
  stamped with simulated time (deterministic and bit-identical across
  pipeline depths); serialised to JSONL by :func:`write_jsonl` and
  rolled up by :func:`trace_summary`.
* :class:`MetricsRegistry` -- named counters/gauges that the engine
  units (multi-log, loader, edge-log, sort/group, page buffers)
  register into; snapshotted into ``RunResult.metrics``.

Both default to null objects with zero overhead.  The
:func:`repro.run` facade wires them up; :func:`use_tracer` installs an
ambient tracer for code paths (CLI, experiments) that construct engines
internally.
"""

from .context import current_tracer, use_tracer
from .metrics import NULL_METRICS, Counter, MetricsRegistry, NullMetricsRegistry
from .tracer import NULL_TRACER, TRACE_KINDS, TraceEvent, Tracer, TraceRecorder
from .writer import load_jsonl, trace_summary, write_jsonl

__all__ = [
    "Tracer",
    "TraceRecorder",
    "TraceEvent",
    "TRACE_KINDS",
    "NULL_TRACER",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "Counter",
    "NULL_METRICS",
    "current_tracer",
    "use_tracer",
    "write_jsonl",
    "load_jsonl",
    "trace_summary",
]
