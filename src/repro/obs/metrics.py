"""Named counters and gauges the engine units register into.

A :class:`MetricsRegistry` holds two kinds of instruments:

* **counters** -- monotonically increasing values the owner bumps with
  :meth:`Counter.inc` at event sites;
* **gauges** -- zero-hot-path-cost callables sampled only when a
  :meth:`MetricsRegistry.snapshot` is taken.  Units register gauges over
  the cheap internal tallies they already keep (e.g.
  ``MultiLogUnit.appended``), so enabling metrics adds no per-record
  work.

:data:`NULL_METRICS` is the null-object registry: units hold it by
default, ``counter()`` returns a shared no-op counter and ``gauge()``
discards the callable, so unmetered runs pay nothing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict


class Counter:
    """One monotonically increasing named value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        self.value += n


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: float = 1) -> None:
        pass


_NULL_COUNTER = _NullCounter()


class MetricsRegistry:
    """Registry of named counters and gauges for one engine run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Callable[[], Any]] = {}

    def counter(self, name: str) -> Counter:
        """Get (or create) the counter registered under ``name``."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str, fn: Callable[[], Any]) -> None:
        """Register ``fn`` to be sampled for ``name`` at snapshot time.

        Re-registering a name replaces the callable (units created later
        in a run shadow earlier ones, e.g. per-superstep buffers).
        """
        self._gauges[name] = fn

    def snapshot(self) -> Dict[str, Any]:
        """Current values of every counter and gauge, by name."""
        out: Dict[str, Any] = {k: c.value for k, c in self._counters.items()}
        for k, fn in self._gauges.items():
            out[k] = fn()
        return out

    @property
    def names(self):
        return sorted(set(self._counters) | set(self._gauges))


class NullMetricsRegistry(MetricsRegistry):
    """Do-nothing registry; the default held by every unit."""

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, fn: Callable[[], Any]) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {}


#: Shared null registry instance.
NULL_METRICS = NullMetricsRegistry()
