"""Trace serialisation: JSONL writer/loader and the summary roll-up.

The on-disk format is one JSON object per line with the stable keys
``kind``, ``t_us``, ``step`` plus the event's own fields -- append-only
and greppable, so multi-gigabyte traces stream without a JSON parser
holding the whole file.  ``repro run <exp> --trace out.jsonl`` produces
one (engines emit ``run_begin`` markers, so several runs can share one
file).

:func:`trace_summary` rolls a trace up into per-kind counts and the
per-superstep page/time aggregates that reconcile exactly with
:class:`~repro.core.results.SuperstepRecord` (each engine emits a
``superstep_end`` event mirroring the record's fields).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from .tracer import TraceEvent

PathLike = Union[str, "Path"]


def _jsonable(value: Any) -> Any:
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):  # numpy scalar
        try:
            return value.item()
        except (AttributeError, ValueError):
            pass
    if hasattr(value, "tolist"):
        return value.tolist()
    return value


def write_jsonl(events: Iterable[TraceEvent], path: PathLike) -> Path:
    """Write a trace as one JSON object per line; returns the path."""
    path = Path(path)
    with path.open("w") as f:
        for ev in events:
            record = {k: _jsonable(v) for k, v in ev.to_dict().items()}
            f.write(json.dumps(record) + "\n")
    return path


def load_jsonl(path: PathLike) -> List[TraceEvent]:
    """Parse a JSONL trace back into :class:`TraceEvent` records."""
    events: List[TraceEvent] = []
    with Path(path).open() as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.pop("kind")
            t_us = obj.pop("t_us")
            step = obj.pop("step")
            events.append(TraceEvent(kind, t_us, step, obj))
    return events


def trace_summary(events: Iterable[TraceEvent]) -> Dict[str, Any]:
    """Roll a trace up into counts and per-superstep aggregates.

    Returns a dict with:

    * ``n_events`` -- total events;
    * ``by_kind`` -- event count per kind;
    * ``runs`` -- the ``run_begin`` markers (engine/program per run);
    * ``supersteps`` -- one dict per ``superstep_end`` event carrying
      the engine's own per-superstep aggregates (pages read/written,
      storage/compute time, ...), in emission order.
    """
    by_kind: Dict[str, int] = {}
    runs: List[Dict[str, Any]] = []
    supersteps: List[Dict[str, Any]] = []
    n = 0
    for ev in events:
        n += 1
        by_kind[ev.kind] = by_kind.get(ev.kind, 0) + 1
        if ev.kind == "run_begin":
            runs.append(dict(ev.fields))
        elif ev.kind == "superstep_end":
            supersteps.append({"step": ev.step, "t_us": ev.t_us, **ev.fields})
    return {
        "n_events": n,
        "by_kind": by_kind,
        "runs": runs,
        "supersteps": supersteps,
    }
