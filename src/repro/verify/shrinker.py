"""Failing-case reduction: shrink a (graph, config) repro to a minimum.

Given a failing :class:`~repro.verify.fuzzer.ConformanceCase`, the
shrinker searches for the smallest case that still fails the same
predicate, in this order:

1. **superstep cut** -- fewer supersteps make every later candidate run
   cheaper, so this goes first;
2. **scenario and option simplification** -- try ``plain`` instead of a
   fault/resume scenario, then drop each engine option;
3. **ddmin over the edge list** -- classic delta debugging (Zeller's
   algorithm) on the explicit directed edge list, with weights carried
   alongside;
4. **vertex compaction** -- remap surviving vertex ids (and the
   program's source vertex) onto a dense ``[0, n)`` range so isolated
   ids disappear;
5. a final superstep cut now that the graph is small.

Every acceptance re-runs the predicate, so the shrinker never "assumes"
a reduction is sound -- a candidate that stops failing is simply not
taken.  The total number of candidate runs is bounded by ``budget``.

Shrunken repros serialise to ``tests/cases/*.json`` via
:func:`save_case`; the regression suite replays every file there with
:func:`replay_case`.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from .fuzzer import CaseOutcome, ConformanceCase, explicit_spec, run_case

#: An edge with its weight slot (``None`` on unweighted graphs).
Edge = Tuple[int, int, Optional[float]]

FailsFn = Callable[[ConformanceCase], bool]


def default_still_fails(case: ConformanceCase) -> bool:
    """A case "fails" when its differential run is not ok."""
    return not run_case(case).ok


def _edges_of(spec: Dict[str, Any]) -> List[Edge]:
    w = spec.get("weights")
    if w is None:
        return [(int(s), int(d), None) for s, d in zip(spec["src"], spec["dst"])]
    return [(int(s), int(d), float(x)) for s, d, x in zip(spec["src"], spec["dst"], w)]


def _with_edges(case: ConformanceCase, edges: List[Edge], n: Optional[int] = None) -> ConformanceCase:
    spec = dict(case.graph)
    spec["src"] = [e[0] for e in edges]
    spec["dst"] = [e[1] for e in edges]
    weighted = spec.get("weights") is not None
    spec["weights"] = [e[2] for e in edges] if weighted else None
    if n is not None:
        spec["n"] = int(n)
    return replace(case, graph=spec)


def _ddmin(
    edges: List[Edge],
    fails_with: Callable[[List[Edge]], bool],
) -> List[Edge]:
    """Zeller's ddmin over the edge list (subsets, then complements)."""
    if len(edges) <= 1:
        return edges
    granularity = 2
    while len(edges) >= 2:
        chunk = math.ceil(len(edges) / granularity)
        subsets = [edges[i : i + chunk] for i in range(0, len(edges), chunk)]
        reduced = False
        for sub in subsets:
            if len(sub) < len(edges) and fails_with(sub):
                edges, granularity, reduced = sub, 2, True
                break
        if not reduced:
            for i in range(len(subsets)):
                comp = [e for j, s in enumerate(subsets) if j != i for e in s]
                if comp and len(comp) < len(edges) and fails_with(comp):
                    edges, granularity, reduced = comp, max(granularity - 1, 2), True
                    break
        if not reduced:
            if granularity >= len(edges):
                break
            granularity = min(len(edges), granularity * 2)
    return edges


def _compact_vertices(case: ConformanceCase) -> ConformanceCase:
    """Remap surviving vertex ids onto a dense range."""
    spec = case.graph
    keep = sorted(set(spec["src"]) | set(spec["dst"]))
    source = case.prog_params.get("source")
    if source is not None and source not in keep:
        keep = sorted(keep + [int(source)])
    if not keep:
        keep = [0]
    remap = {v: i for i, v in enumerate(keep)}
    new_spec = dict(spec)
    new_spec["src"] = [remap[v] for v in spec["src"]]
    new_spec["dst"] = [remap[v] for v in spec["dst"]]
    new_spec["n"] = len(keep)
    params = dict(case.prog_params)
    if source is not None:
        params["source"] = remap.get(int(source), 0)
    return replace(case, graph=new_spec, prog_params=params)


def shrink(
    case: ConformanceCase,
    still_fails: Optional[FailsFn] = None,
    budget: int = 500,
) -> ConformanceCase:
    """Reduce ``case`` to a (locally) minimal case that still fails.

    ``still_fails`` defaults to re-running the differential check; pass
    a custom predicate to shrink against a specific mismatch signature.
    The input ``case`` must itself fail the predicate.
    """
    fails = still_fails or default_still_fails
    runs = [0]

    def check(candidate: ConformanceCase) -> bool:
        if runs[0] >= budget:
            return False
        runs[0] += 1
        try:
            return fails(candidate)
        except Exception:
            # A candidate that crashes the harness is not a reduction.
            return False

    if not check(case):
        raise ValueError("shrink() requires a case that fails the predicate")

    current = replace(case, graph=explicit_spec(case.graph))
    if not check(current):
        # Explicit form must be equivalent; if not, keep the original.
        current = case

    # 1. Cut supersteps early: cheaper candidates for everything below.
    for steps in (1, 2, 3, 5, 8):
        if steps < current.max_supersteps and check(replace(current, max_supersteps=steps)):
            current = replace(current, max_supersteps=steps)
            break

    # 2. Simplify scenario, then drop options one at a time.
    if current.scenario != "plain":
        cand = replace(current, scenario="plain", scenario_params={})
        if check(cand):
            current = cand
    for key in list(current.options):
        opts = {k: v for k, v in current.options.items() if k != key}
        cand = replace(current, options=opts)
        if check(cand):
            current = cand
    # Optional config-dict dimensions (cache, planner, workers, device
    # array) reduce to their defaults the same way: a failure that
    # persists without the knob is a simpler repro.
    for key in (
        "num_devices", "placement", "io_plan", "readahead_pages",
        "cache_policy", "cache_bytes", "num_workers", "pipeline_depth",
    ):
        if key in current.config:
            cfg = {k: v for k, v in current.config.items() if k != key}
            cand = replace(current, config=cfg)
            if check(cand):
                current = cand

    # 3. ddmin the edge list (only meaningful on explicit specs).
    if current.graph["kind"] == "explicit":
        edges = _ddmin(
            _edges_of(current.graph),
            lambda sub: check(_with_edges(current, sub)),
        )
        current = _with_edges(current, edges)
        if edges and check(_with_edges(current, [])):
            current = _with_edges(current, [])

        # 4. Compact vertex ids.
        cand = _compact_vertices(current)
        if cand.graph != current.graph and check(cand):
            current = cand

    # 5. Final superstep cut on the small graph.
    for steps in (1, 2, 3):
        if steps < current.max_supersteps and check(replace(current, max_supersteps=steps)):
            current = replace(current, max_supersteps=steps)
            break

    if not current.case_id.endswith("-min"):
        current = replace(current, case_id=current.case_id + "-min")
    return current


# -- repro corpus ------------------------------------------------------------


def save_case(
    case: ConformanceCase,
    directory: str,
    mismatches: Optional[List[str]] = None,
    note: str = "",
) -> str:
    """Write a case (plus the mismatch it reproduced) to ``directory``.

    Returns the path.  File name is the case id, so re-saving the same
    case overwrites rather than accumulating duplicates.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{case.case_id}.json")
    payload = {
        "case": case.to_dict(),
        "mismatches": list(mismatches or []),
        "note": note,
    }
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def load_case(path: str) -> ConformanceCase:
    """Load a case file written by :func:`save_case`."""
    with open(path) as f:
        payload = json.load(f)
    return ConformanceCase.from_dict(payload["case"])


def replay_case(path: str) -> CaseOutcome:
    """Load and re-run a saved repro; the regression suite asserts ok."""
    return run_case(load_case(path))
