"""The golden oracle engine: in-memory message passing, nothing else.

Every out-of-core engine in this package moves updates through some
storage machinery -- multi-logs, shards, sort-reduce trees, edge grids.
The oracle moves them through a Python list.  It implements the same
:class:`~repro.core.api.VertexProgram` contract and the same engine
constructor protocol as the real engines, so any (graph, program,
options) triple can be replayed against a trusted reference.

Bit-exactness contract (the property the conformance fuzzer relies on):

* vertices are processed in globally ascending id order, exactly like
  MultiLogVC's interval-ordered groups and GraphChi's interval sweep;
* outgoing updates are collected in send order; delivery stable-sorts
  by destination, so the per-destination update order equals the global
  send order -- the same order the multi-log's FIFO append/consume path
  produces.  Named combine reductions (``reduceat`` over those slices)
  therefore reduce in the identical float order and match MultiLogVC
  and GraphChi to the last ulp;
* activation follows :class:`~repro.core.active.ActiveTracker` -- the
  one piece of engine machinery the oracle reuses, because it is pure
  in-memory bookkeeping and *is* the semantics being verified;
* edge state / edge weights live in a host array laid out exactly like
  the on-SSD interval value files (CSR weight order), initialised from
  the graph weights or unit weights.

The oracle accepts (and ignores) an ``fs`` argument so it can be driven
through :func:`repro.run` with ``engine="oracle"``.  It reports zero
storage time and empty SSD stats; per-superstep activity fields
(``active_vertices``, ``updates_processed``, ``messages_sent``,
``edges_scanned``) are filled with the same counting rules the real
engines use, so superstep records are comparable.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..config import DEFAULT_CONFIG, SimConfig
from ..errors import ProgramError
from ..graph.csr import CSRGraph
from ..obs.context import current_tracer
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.tracer import Tracer
from ..options import EngineOptions, resolve_options
from ..ssd.stats import SSDStats
from ..core.active import ActiveTracker
from ..core.api import InitialState, VertexContext, VertexProgram
from ..core.combine import combine_sorted
from ..core.results import ComputeMeter, RunResult, SuperstepRecord
from ..core.update import DATA_DTYPE, DEST_DTYPE, SRC_DTYPE, UpdateBatch

_EMPTY_SRC = np.empty(0, dtype=SRC_DTYPE)
_EMPTY_DATA = np.empty(0, dtype=DATA_DTYPE)


class _SendLog:
    """Collects one superstep's outgoing updates in send order."""

    __slots__ = ("dest", "src", "data")

    def __init__(self) -> None:
        self.dest: List[int] = []
        self.src: List[int] = []
        self.data: List[float] = []

    def send(self, dest: int, src: int, data: float) -> None:
        self.dest.append(int(dest))
        self.src.append(int(src))
        self.data.append(float(data))

    def send_many(self, dests: np.ndarray, src: int, datas: np.ndarray) -> None:
        self.dest.extend(int(d) for d in np.asarray(dests))
        self.src.extend([int(src)] * len(dests))
        self.data.extend(float(x) for x in np.asarray(datas))

    @property
    def n(self) -> int:
        return len(self.dest)

    def to_batch(self) -> UpdateBatch:
        return UpdateBatch(
            np.asarray(self.dest, dtype=DEST_DTYPE),
            np.asarray(self.src, dtype=SRC_DTYPE),
            np.asarray(self.data, dtype=DATA_DTYPE),
        )


class OracleEngine:
    """Trusted in-memory reference implementation of the engine contract.

    Parameters mirror the real engines so :func:`repro.run` can construct
    it (``fs`` is accepted and ignored; there is no storage).  Only the
    default :class:`~repro.options.EngineOptions` are meaningful -- the
    oracle has no knobs, which is the point.
    """

    name = "oracle"

    def __init__(
        self,
        graph: CSRGraph,
        program: VertexProgram,
        config: SimConfig = DEFAULT_CONFIG,
        fs=None,
        *,
        options: Optional[EngineOptions] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        progress: Optional[Callable[[SuperstepRecord], None]] = None,
    ) -> None:
        self.options = resolve_options(self.name, options)
        if program.mutates_structure:
            raise ProgramError(
                "the oracle engine does not support structure-mutating programs"
            )
        if program.uses_edge_state and program.needs_weights:
            raise ProgramError(
                "uses_edge_state and needs_weights are mutually exclusive: "
                "both map to the edge value vector"
            )
        self.graph = graph
        self.program = program
        self.config = config
        self.tracer = tracer if tracer is not None else current_tracer()
        self.metrics_registry = metrics
        self.progress = progress

    # ------------------------------------------------------------------

    def run(
        self,
        max_supersteps: int = 15,
        seed: int = 0,
        *,
        initial_state: Optional[InitialState] = None,
    ) -> RunResult:
        graph = self.graph
        prog = self.program
        n = graph.n
        cfg = self.config
        rng = np.random.default_rng(seed)
        meter = ComputeMeter(cfg.compute)
        tracer = self.tracer
        reg = self.metrics_registry if self.metrics_registry is not None else NULL_METRICS
        _ = reg  # the oracle has no units that export metrics
        trace_start = len(tracer.events)
        if tracer.enabled:
            tracer.bind_clock(lambda: meter.time_us)
            tracer.set_step(-1)
            tracer.emit(
                "run_begin",
                engine=self.name,
                program=prog.name,
                mode="sync",
                n_vertices=int(n),
                n_intervals=1,
            )

        # Edge values in CSR weight order -- the host-side twin of the
        # interval value files (weights for needs_weights programs,
        # mutable per-edge state for uses_edge_state programs).
        edge_vals: Optional[np.ndarray] = None
        if prog.needs_weights or prog.uses_edge_state:
            wsrc = graph.with_unit_weights() if graph.weights is None else graph
            edge_vals = np.array(wsrc.weights, dtype=np.float64, copy=True)

        init = initial_state if initial_state is not None else prog.initial(graph, rng)
        values = np.array(init.values, dtype=np.float64, copy=True)
        if values.shape[0] != n:
            raise ProgramError("initial values must have one entry per vertex")
        tracker = ActiveTracker(n, cfg.edgelog_history_window)
        pending = UpdateBatch.empty()
        active0 = np.asarray(init.active, dtype=np.int64)
        if init.messages is not None and init.messages.n:
            pending = init.messages
            active0 = np.union1d(active0, init.messages.dest.astype(np.int64))
        tracker.seed(active0)

        records: List[SuperstepRecord] = []
        converged = False
        for step in range(max_supersteps):
            if tracker.n_current == 0 and pending.n == 0:
                converged = True
                break
            compute_before = meter.time_us
            if tracer.enabled:
                tracer.set_step(step)
                tracer.emit(
                    "superstep_begin",
                    active=int(tracker.n_current),
                    pending_messages=int(pending.n),
                )

            # Deliver: stable sort by destination preserves send order
            # within each destination, then apply the optional combine.
            batch = pending.sort_by_dest()
            uniq, offsets = batch.group()
            if prog.combine is not None and uniq.shape[0]:
                batch, uniq, offsets = combine_sorted(batch, uniq, offsets, prog.combine)
            verts = np.union1d(uniq.astype(np.int64), tracker.current_ids)

            outbox = _SendLog()
            updates_processed = 0
            edges_scanned = 0
            upos = np.searchsorted(uniq, verts)
            k_updates = uniq.shape[0]
            for idx in range(verts.shape[0]):
                v = int(verts[idx])
                p = int(upos[idx])
                if p < k_updates and uniq[p] == v:
                    s, e = int(offsets[p]), int(offsets[p + 1])
                    usrc, udata = batch.src[s:e], batch.data[s:e]
                else:
                    usrc, udata = _EMPTY_SRC, _EMPTY_DATA
                lo, hi = int(graph.rowptr[v]), int(graph.rowptr[v + 1])
                nb = graph.colidx[lo:hi]
                ev = edge_vals[lo:hi] if edge_vals is not None else None
                ctx = VertexContext(
                    vid=v,
                    superstep=step,
                    values=values,
                    updates_src=usrc,
                    updates_data=udata,
                    out_neighbors=nb,
                    out_weights=ev if prog.needs_weights else None,
                    edge_state=ev if prog.uses_edge_state else None,
                    send=outbox.send,
                    send_many=outbox.send_many,
                    rng=rng,
                )
                prog.process(ctx)
                if not ctx.deactivated:
                    tracker.note_self_active(v)
                updates_processed += usrc.shape[0]
                edges_scanned += nb.shape[0]
            meter.charge_vertices(verts.shape[0])
            meter.charge_updates(int(batch.n))
            meter.charge_edges(edges_scanned)

            prog.on_superstep_end(step, values, rng)
            pending = outbox.to_batch()
            tracker.note_messages(pending.dest)

            rec = SuperstepRecord(
                index=step,
                active_vertices=int(verts.shape[0]),
                updates_processed=int(updates_processed),
                messages_sent=int(outbox.n),
                edges_scanned=int(edges_scanned),
                storage_time_us=0.0,
                compute_time_us=meter.time_us - compute_before,
                pages_read=0,
                pages_written=0,
            )
            records.append(rec)
            if tracer.enabled:
                tracer.emit("superstep_end", **rec.to_dict())
            if self.progress is not None:
                self.progress(rec)
            tracker.advance()
            if prog.is_converged(values):
                converged = True
                break

        if tracer.enabled:
            tracer.emit("run_end", engine=self.name, converged=converged, supersteps=len(records))
        return RunResult(
            engine=self.name,
            program=prog.name,
            values=values,
            supersteps=records,
            converged=converged,
            stats=SSDStats(),
            compute_time_us=meter.time_us,
            trace=tracer.events[trace_start:] if tracer.enabled else None,
            metrics=(
                self.metrics_registry.snapshot()
                if self.metrics_registry is not None
                else None
            ),
        )
