"""Semantic diff between an engine run and the oracle run.

Comparison levels (chosen per engine/program by the fuzzer):

* ``atol=0`` -- bit-exact values.  Holds for every engine on min/max
  combine and non-combine programs, and for MultiLogVC / GraphChi /
  GraFBoost on add-combine too (all three reduce per-destination in
  global send order).
* ``atol>0`` -- ``np.allclose``-style tolerance.  Needed only for
  add-combine programs on the edge-streaming engines (GridGraph,
  XStream), whose block traversal sums contributions in a different
  float order.
* ``check_records`` -- per-superstep activity tuples (active vertices,
  updates processed, messages sent, edges scanned).  Enabled where the
  engine's superstep accounting is defined to match the oracle's.

Every mismatch is a human-readable string; an empty list means the run
conforms.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.results import RunResult


def compare_results(
    oracle: RunResult,
    other: RunResult,
    *,
    atol: float = 0.0,
    check_supersteps: bool = True,
    check_records: bool = True,
    max_mismatches: int = 8,
) -> List[str]:
    """Return mismatch descriptions (empty means ``other`` conforms)."""
    a, b = oracle.comparable(), other.comparable()
    mismatches: List[str] = []

    va, vb = a["values"], b["values"]
    if va.shape != vb.shape:
        mismatches.append(f"value vector shape {vb.shape} != oracle {va.shape}")
        return mismatches
    if atol > 0.0:
        bad = ~np.isclose(vb, va, rtol=atol, atol=atol)
    else:
        bad = vb != va
    if bad.any():
        ids = np.flatnonzero(bad)
        shown = ", ".join(
            f"v{int(i)}: {vb[i]!r} != oracle {va[i]!r}" for i in ids[:max_mismatches]
        )
        more = f" (+{ids.size - max_mismatches} more)" if ids.size > max_mismatches else ""
        kind = "bit-exact" if atol == 0.0 else f"atol={atol}"
        mismatches.append(f"values differ ({kind}) at {ids.size} vertices: {shown}{more}")

    if check_supersteps:
        if a["n_supersteps"] != b["n_supersteps"]:
            mismatches.append(
                f"superstep count {b['n_supersteps']} != oracle {a['n_supersteps']}"
            )
        if a["converged"] != b["converged"]:
            mismatches.append(
                f"converged={b['converged']} != oracle converged={a['converged']}"
            )

    if check_records and a["n_supersteps"] == b["n_supersteps"]:
        for ra, rb in zip(a["activity"], b["activity"]):
            if ra != rb:
                fields = ("index", "active_vertices", "updates_processed",
                          "messages_sent", "edges_scanned")
                diffs = ", ".join(
                    f"{name}: {y} != oracle {x}"
                    for name, x, y in zip(fields, ra, rb)
                    if x != y
                )
                mismatches.append(f"superstep {ra[0]} record differs: {diffs}")
                if len(mismatches) >= max_mismatches:
                    mismatches.append("... (truncated)")
                    break
    return mismatches
