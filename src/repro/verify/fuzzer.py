"""Seeded differential fuzzer: adversarial graphs x engine config matrix.

Every case is a fully serialisable ``(graph spec, program, engine,
options, config, scenario)`` tuple.  :func:`run_case` builds fresh
inputs (engines may mutate host-side state, and programs like MIS carry
internal round state), runs the golden oracle and the engine under
test, and diffs them with :func:`~repro.verify.compare.compare_results`.

Case generation is deterministic: case ``i`` of master seed ``s`` is
derived from ``default_rng([s, i])`` and nothing else, so any failing
case can be regenerated from ``(seed, index)`` alone and the shrinker
can replay candidates cheaply.

Engine eligibility encodes the engines' documented contracts rather
than hiding bugs:

* GridGraph / XStream require a combine operator (streaming
  accumulation), so they only receive mergeable programs;
* GraFBoost runs non-mergeable programs only in its §VIII adapted mode
  (``adapted=True``), which the generator forces;
* GraphChi messages live in per-edge slots (one message per edge per
  superstep, Fig. 1b), so its graphs are deduplicated -- parallel edges
  cannot carry independent messages in that model;
* asynchronous MultiLogVC consumes same-superstep updates, so async
  cases use monotone min-combine programs (BFS/WCC/SSSP) and compare
  final values only (superstep schedules legitimately differ).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from .. import algorithms as alg
from ..config import MemoryConfig, SimConfig, SSDConfig
from ..core.results import RunResult
from ..errors import RecoveryError, SimulatedCrashError
from ..graph.csr import CSRGraph
from ..graph.generators import chain_edges, ring_edges, rmat_edges, star_edges
from ..options import EngineOptions
from ..recovery.checkpoint import CheckpointManager
from ..ssd.faults import FaultPlan, FaultRule
from ..ssd.filesystem import SimFS
from .compare import compare_results
from .oracle import OracleEngine

#: Programs safe to run under asynchronous delivery: monotone min-combine
#: fixed points, where the arrival schedule cannot change the result.
MONOTONE_PROGRAMS = frozenset({"bfs", "wcc", "sssp"})

#: Programs each engine can execute (engine contracts, see module doc).
ENGINE_PROGRAMS: Dict[str, Sequence[str]] = {
    "multilogvc": ("bfs", "pagerank", "wcc", "sssp", "cdlp", "coloring", "mis", "randomwalk"),
    "graphchi": ("bfs", "pagerank", "wcc", "sssp", "cdlp", "coloring", "mis", "randomwalk"),
    "grafboost": ("bfs", "pagerank", "wcc", "sssp", "cdlp", "coloring", "mis", "randomwalk"),
    "gridgraph": ("bfs", "pagerank", "wcc", "sssp"),
    "xstream": ("bfs", "pagerank", "wcc", "sssp"),
}

#: Round-robin engine schedule; MultiLogVC appears every other case so
#: the checkpoint/resume and fault scenarios get enough air time.
ENGINE_CYCLE = (
    "multilogvc", "graphchi", "multilogvc", "grafboost",
    "multilogvc", "gridgraph", "multilogvc", "xstream",
)

#: Scenario schedule for MultiLogVC cases (round-robin, so a 25-case
#: quick pass exercises every scenario).
MLVC_SCENARIOS = ("plain", "resume", "crash_resume", "transient_fault")

GRAPH_KINDS = ("rmat", "rmat_multi", "star", "chain", "ring", "two_comp")


@dataclass
class ConformanceCase:
    """One fully-specified differential check, JSON-serialisable."""

    case_id: str
    engine: str
    program: str
    prog_params: Dict[str, Any]
    graph: Dict[str, Any]
    options: Dict[str, Any]
    config: Dict[str, Any]
    scenario: str = "plain"
    scenario_params: Dict[str, Any] = field(default_factory=dict)
    max_supersteps: int = 15
    seed: int = 0
    compare: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "case_id": self.case_id,
            "engine": self.engine,
            "program": self.program,
            "prog_params": self.prog_params,
            "graph": self.graph,
            "options": self.options,
            "config": self.config,
            "scenario": self.scenario,
            "scenario_params": self.scenario_params,
            "max_supersteps": self.max_supersteps,
            "seed": self.seed,
            "compare": self.compare,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ConformanceCase":
        return cls(**{k: d[k] for k in cls.__dataclass_fields__ if k in d})

    def describe(self) -> str:
        bits = [self.case_id, self.engine, self.program, f"graph={self.graph.get('kind')}"]
        if self.scenario != "plain":
            bits.append(self.scenario)
        if self.options:
            bits.append(",".join(f"{k}={v}" for k, v in sorted(self.options.items())))
        return " ".join(bits)


@dataclass
class CaseOutcome:
    """What happened when a case ran."""

    case: ConformanceCase
    mismatches: List[str] = field(default_factory=list)
    error: Optional[str] = None
    note: str = ""

    @property
    def ok(self) -> bool:
        return not self.mismatches and self.error is None

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        tail = ""
        if self.error:
            tail = f" error: {self.error}"
        elif self.mismatches:
            tail = f" {self.mismatches[0]}"
        if self.note:
            tail += f" [{self.note}]"
        return f"{status} {self.case.describe()}{tail}"


# -- builders ----------------------------------------------------------------


def build_graph(spec: Dict[str, Any]) -> CSRGraph:
    """Materialise a graph spec (fresh arrays every call)."""
    kind = spec["kind"]
    if kind == "explicit":
        w = spec.get("weights")
        return CSRGraph.from_edges(
            int(spec["n"]),
            np.asarray(spec["src"], dtype=np.int64),
            np.asarray(spec["dst"], dtype=np.int64),
            weights=None if w is None else np.asarray(w, dtype=np.float64),
        )
    seed = int(spec["seed"])
    if kind in ("rmat", "rmat_multi", "two_comp"):
        n0, m0 = int(spec["n"]), int(spec["m"])
        if kind == "two_comp":
            # Two disjoint power-law components (plus the optional
            # isolated tail below): no path between the halves.
            na, sa, ta = rmat_edges(max(4, n0 // 2), max(2, m0 // 2), seed=seed)
            nb, sb, tb = rmat_edges(max(4, n0 - na), max(2, m0 - m0 // 2), seed=seed + 1)
            n = na + nb
            src = np.concatenate([sa, sb + na])
            dst = np.concatenate([ta, tb + na])
        else:
            n, src, dst = rmat_edges(
                n0, m0, seed=seed, self_loops=bool(spec.get("self_loops", False))
            )
    elif kind == "star":
        n, src, dst = star_edges(int(spec["n"]))
    elif kind == "chain":
        n, src, dst = chain_edges(int(spec["n"]))
    elif kind == "ring":
        n, src, dst = ring_edges(int(spec["n"]))
    else:
        raise ValueError(f"unknown graph kind {kind!r}")
    pad = int(spec.get("pad", 0))  # isolated tail: empty vertex intervals
    n += pad
    weights = None
    if spec.get("weighted", False):
        rng = np.random.default_rng([seed, 0xBEEF])
        weights = rng.uniform(0.1, 2.0, size=src.shape[0])
    return CSRGraph.from_edges(
        n, src, dst,
        weights=weights,
        symmetrize=bool(spec.get("symmetrize", True)),
        dedup=bool(spec.get("dedup", False)),
    )


def explicit_spec(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Convert any graph spec to an explicit edge-list spec (the
    shrinker's working form; round-trips through :func:`build_graph`)."""
    if spec["kind"] == "explicit":
        return dict(spec)
    g = build_graph(spec)
    src, dst = g.edge_array()
    return {
        "kind": "explicit",
        "n": int(g.n),
        "src": [int(x) for x in src],
        "dst": [int(x) for x in dst],
        "weights": None if g.weights is None else [float(x) for x in g.weights],
    }


_PROGRAM_FACTORIES: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "bfs": lambda p: alg.BFSProgram(source=p.get("source", 0)),
    "pagerank": lambda p: alg.DeltaPageRankProgram(threshold=p.get("threshold", 0.01)),
    "wcc": lambda p: alg.WCCProgram(),
    "sssp": lambda p: alg.SSSPProgram(source=p.get("source", 0)),
    "cdlp": lambda p: alg.CommunityDetectionProgram(),
    "coloring": lambda p: alg.GraphColoringProgram(seed=p.get("seed", 0)),
    "mis": lambda p: alg.MISProgram(seed=p.get("seed", 0)),
    "randomwalk": lambda p: alg.RandomWalkProgram(
        source_stride=p.get("source_stride", 13),
        walkers_per_source=p.get("walkers_per_source", 2),
        max_steps=p.get("max_steps", 5),
        seed=p.get("seed", 0),
    ),
}


def build_program(case: ConformanceCase):
    """Fresh program instance (programs carry per-run internal state)."""
    return _PROGRAM_FACTORIES[case.program](case.prog_params)


def build_config(cdict: Dict[str, Any]) -> SimConfig:
    cache_bytes = cdict.get("cache_bytes")
    return SimConfig(
        ssd=SSDConfig(
            page_size=int(cdict.get("page_size", 4096)),
            channels=int(cdict.get("channels", 4)),
        ),
        memory=MemoryConfig(total_bytes=int(cdict.get("total_bytes", 256 * 1024))),
        pipeline_depth=int(cdict.get("pipeline_depth", 1)),
        num_workers=int(cdict.get("num_workers", 1)),
        cache_policy=str(cdict.get("cache_policy", "none")),
        cache_bytes=None if cache_bytes is None else int(cache_bytes),
        io_plan=str(cdict.get("io_plan", "off")),
        readahead_pages=int(cdict.get("readahead_pages", 64)),
        num_devices=int(cdict.get("num_devices", 1)),
        placement=str(cdict.get("placement", "affinity")),
    )


def build_options(case: ConformanceCase) -> Optional[EngineOptions]:
    if not case.options:
        return None
    return EngineOptions(**case.options)


# -- execution ---------------------------------------------------------------


def run_oracle(case: ConformanceCase) -> RunResult:
    return OracleEngine(
        build_graph(case.graph), build_program(case), build_config(case.config)
    ).run(max_supersteps=case.max_supersteps, seed=case.seed)


def _engine_run(case: ConformanceCase, fs: Optional[SimFS] = None) -> RunResult:
    # Deferred: repro.runner registers the oracle from this package, so a
    # module-level import here would be circular.
    from ..runner import run as run_engine

    return run_engine(
        build_graph(case.graph),
        build_program(case),
        engine=case.engine,
        config=build_config(case.config),
        options=build_options(case),
        fs=fs,
        max_supersteps=case.max_supersteps,
        seed=case.seed,
    )


def run_case(case: ConformanceCase) -> CaseOutcome:
    """Run one differential check; never raises for engine misbehaviour."""
    outcome = CaseOutcome(case=case)
    try:
        oracle = run_oracle(case)
    except Exception as exc:  # oracle failure is a harness bug, surface it
        outcome.error = f"oracle raised {type(exc).__name__}: {exc}"
        return outcome

    cfg = build_config(case.config)
    try:
        if case.scenario == "plain":
            result = _engine_run(case)
        elif case.scenario == "transient_fault":
            fs = SimFS(cfg)
            fs.device.install_faults(
                FaultPlan(
                    [
                        FaultRule(
                            op=case.scenario_params.get("op", "read"),
                            kind="error",
                            after_ops=int(case.scenario_params.get("after_ops", 5)),
                            transient=True,
                        )
                    ],
                    seed=case.seed,
                )
            )
            result = _engine_run(case, fs=fs)
        elif case.scenario == "resume":
            # Clean mid-run checkpoint + resume: the resumed run must
            # reproduce the full oracle outcome (records included).
            fs = SimFS(cfg)
            result = _engine_run(case, fs=fs)
            try:
                ckpt = CheckpointManager.load_latest(fs)
            except RecoveryError:
                outcome.note = "converged before first checkpoint; compared direct run"
            else:
                from ..runner import resume as resume_engine

                result = resume_engine(
                    build_graph(case.graph),
                    build_program(case),
                    ckpt,
                    config=cfg,
                    options=build_options(case),
                    max_supersteps=case.max_supersteps,
                    seed=case.seed,
                )
                outcome.note = f"resumed from superstep {ckpt.step}"
        elif case.scenario == "crash_resume":
            # Pass 1: count the run's I/O batches under an empty plan
            # (same serial operation order a real plan sees), so the
            # crash point can be placed as a fraction of the whole run.
            fs0 = SimFS(cfg)
            fs0.device.install_faults(FaultPlan([]))
            _engine_run(case, fs=fs0)
            total_ops = fs0.device.fault_plan.ops_seen
            frac = float(case.scenario_params.get("frac", 0.5))
            after_ops = max(1, min(total_ops - 1, int(frac * total_ops)))
            fs = SimFS(cfg)
            fs.device.install_faults(FaultPlan.crash_after(after_ops, seed=case.seed))
            crashed = False
            try:
                result = _engine_run(case, fs=fs)
            except SimulatedCrashError:
                crashed = True
            if crashed:
                try:
                    ckpt = CheckpointManager.load_latest(fs)
                except RecoveryError:
                    # Crash preceded the first checkpoint: recovery is a
                    # from-scratch rerun, which must still match.
                    result = _engine_run(case)
                    outcome.note = "crash before first checkpoint; compared fresh rerun"
                else:
                    from ..runner import resume as resume_engine

                    result = resume_engine(
                        build_graph(case.graph),
                        build_program(case),
                        ckpt,
                        config=cfg,
                        options=build_options(case),
                        max_supersteps=case.max_supersteps,
                        seed=case.seed,
                    )
                    outcome.note = f"crashed, resumed from superstep {ckpt.step}"
            else:
                outcome.note = "run finished before the crash point"
        else:
            outcome.error = f"unknown scenario {case.scenario!r}"
            return outcome
    except Exception as exc:
        outcome.error = f"{type(exc).__name__}: {exc}"
        return outcome

    outcome.mismatches = compare_results(
        oracle,
        result,
        atol=float(case.compare.get("atol", 0.0)),
        check_supersteps=bool(case.compare.get("check_supersteps", True)),
        check_records=bool(case.compare.get("check_records", True)),
    )
    return outcome


# -- generation --------------------------------------------------------------


def _graph_spec(rng: np.random.Generator, engine: str, program: str) -> Dict[str, Any]:
    kind = GRAPH_KINDS[int(rng.integers(0, len(GRAPH_KINDS)))]
    n = int(rng.integers(8, 64))
    spec: Dict[str, Any] = {"kind": kind, "seed": int(rng.integers(0, 2**31))}
    if kind in ("rmat", "rmat_multi", "two_comp"):
        spec["n"] = n
        spec["m"] = int(rng.integers(n, 6 * n))
        spec["self_loops"] = bool(rng.integers(0, 2))
        # The multi-edge variant keeps whatever duplicates the generator
        # emits; GraphChi always gets a simple graph below (its per-edge
        # message slots cannot carry parallel-edge deliveries).
        spec["dedup"] = kind != "rmat_multi"
        if kind == "rmat_multi":
            spec["kind"] = "rmat"
    else:
        spec["n"] = max(n, 8)
        spec["dedup"] = False
        spec["self_loops"] = False
    if engine == "graphchi":
        spec["dedup"] = True
    spec["symmetrize"] = bool(rng.integers(0, 4) > 0)  # mostly undirected
    if program in ("cdlp", "coloring"):
        # Edge-state programs key their per-edge tables by out-neighbor
        # (updates arrive along in-edges), so they require symmetric graphs.
        spec["symmetrize"] = True
    if rng.integers(0, 3) == 0:
        spec["pad"] = int(rng.integers(1, 2 * n))  # isolated tail vertices
    spec["weighted"] = program == "sssp"
    return spec


def _spec_n_vertices(spec: Dict[str, Any]) -> int:
    if spec["kind"] == "explicit":
        return int(spec["n"])
    base = int(spec["n"])
    if spec["kind"] == "two_comp":
        base = max(4, base // 2) + max(4, base - max(4, base // 2))
    return base + int(spec.get("pad", 0))


def _config_dict(rng: np.random.Generator) -> Dict[str, Any]:
    page = int(rng.choice([1024, 2048, 4096]))
    # multilog buffer (5% of total) must hold at least one page.
    total = page * int(rng.integers(24, 80))
    cdict = {
        "page_size": page,
        "total_bytes": total,
        "channels": int(rng.choice([1, 2, 4])),
        "pipeline_depth": int(rng.choice([0, 1, 2])),
        # Parallel interval executor (DESIGN.md §11): results must be
        # bit-identical at any worker count, so the oracle comparison
        # doubles as a determinism check for the speculate/commit path.
        "num_workers": int(rng.choice([1, 2, 4])),
    }
    # Page-cache dimension: a third of cases run with a deliberately
    # tiny cache (heavy eviction churn) -- values/records must not care.
    if int(rng.integers(0, 3)) == 0:
        cdict["cache_policy"] = "clock"
        cdict["cache_bytes"] = page * int(rng.integers(1, 33))
    # I/O planner dimension (DESIGN.md §13): a third of cases plan their
    # superstep reads (extent coalescing + dispatch waves); values and
    # records must be bit-identical to the unplanned charge order.
    # Read-ahead degrades to plain coalescing when the cache dimension
    # did not fire (the planner needs a cache to prefetch into), which
    # is itself a documented behaviour worth fuzzing.
    if int(rng.integers(0, 3)) == 0:
        cdict["io_plan"] = str(rng.choice(["coalesce", "coalesce+readahead"]))
        cdict["readahead_pages"] = int(rng.integers(1, 65))
    # Device-array dimension (DESIGN.md §14): a third of cases run on a
    # multi-SSD array; canonical accounting is untouched by design, so
    # the oracle comparison doubles as a placement-invariance check
    # (including device counts that do not divide the page count).
    if int(rng.integers(0, 3)) == 0:
        cdict["num_devices"] = int(rng.choice([2, 3, 4]))
        cdict["placement"] = str(rng.choice(["stripe", "affinity"]))
    return cdict


def generate_case(master_seed: int, index: int) -> ConformanceCase:
    """Deterministically derive case ``index`` of ``master_seed``."""
    rng = np.random.default_rng([master_seed, index])
    engine = ENGINE_CYCLE[index % len(ENGINE_CYCLE)]
    program = str(rng.choice(ENGINE_PROGRAMS[engine]))
    graph = _graph_spec(rng, engine, program)
    n_total = _spec_n_vertices(graph)

    prog_params: Dict[str, Any] = {}
    if program in ("bfs", "sssp"):
        prog_params["source"] = int(rng.integers(0, n_total))
    if program in ("coloring", "mis", "randomwalk"):
        prog_params["seed"] = int(rng.integers(0, 1000))
    if program == "randomwalk":
        prog_params["source_stride"] = int(rng.choice([7, 13]))
    if program == "pagerank":
        prog_params["threshold"] = float(rng.choice([0.01, 0.001]))

    options: Dict[str, Any] = {}
    scenario = "plain"
    scenario_params: Dict[str, Any] = {}
    compare: Dict[str, Any] = {}
    if engine == "multilogvc":
        mlvc_index = index // 2  # every other case is multilogvc
        scenario = MLVC_SCENARIOS[mlvc_index % len(MLVC_SCENARIOS)]
        if rng.integers(0, 2):
            options["min_intervals"] = int(rng.choice([2, 4, 7]))
        if rng.integers(0, 4) == 0:
            options["enable_fusing"] = False
        if rng.integers(0, 4) == 0:
            options["enable_edgelog"] = False
        if scenario in ("resume", "crash_resume"):
            options["checkpoint_every"] = int(rng.choice([1, 2, 3]))
            if rng.integers(0, 2):
                options["checkpoint_mode"] = "incremental"
        elif scenario == "plain":
            if program in MONOTONE_PROGRAMS and rng.integers(0, 3) == 0:
                options["mode"] = "async"
                # Async schedules legitimately differ; the monotone
                # fixed point (final values) is the invariant.
                compare = {"check_supersteps": False, "check_records": False}
            elif rng.integers(0, 3) == 0:
                options["checkpoint_every"] = 2  # checkpointing must not perturb
        if scenario == "crash_resume":
            # Fraction of the run's total I/O batches (counted at run
            # time) after which power is cut -- guarantees the crash
            # lands inside the run regardless of graph/config scale.
            scenario_params["frac"] = round(float(rng.uniform(0.15, 0.9)), 3)
        if scenario == "transient_fault":
            scenario_params["after_ops"] = int(rng.integers(1, 40))
            scenario_params["op"] = str(rng.choice(["read", "write"]))
    elif engine == "grafboost":
        prog = _PROGRAM_FACTORIES[program]({})
        if prog.combine is None:
            options["adapted"] = True
        elif rng.integers(0, 3) == 0:
            options["merge_fanout"] = int(rng.choice([2, 4]))
    elif engine in ("gridgraph", "xstream"):
        if rng.integers(0, 2):
            options["grid_p"] = int(rng.choice([2, 3, 5]))

    return ConformanceCase(
        case_id=f"s{master_seed}-{index:03d}",
        engine=engine,
        program=program,
        prog_params=prog_params,
        graph=graph,
        options=options,
        config=_config_dict(rng),
        scenario=scenario,
        scenario_params=scenario_params,
        max_supersteps=int(rng.choice([6, 10, 15, 20])),
        seed=int(rng.integers(0, 100)),
        compare=compare,
    )


def generate_cases(
    seed: int, n_cases: int, engines: Optional[Sequence[str]] = None
) -> List[ConformanceCase]:
    """The first ``n_cases`` cases of ``seed`` (optionally engine-filtered).

    Filtering keeps each case's identity (``index`` still seeds its rng)
    so ``--engines`` never changes what any individual case contains.
    """
    out: List[ConformanceCase] = []
    index = 0
    while len(out) < n_cases:
        case = generate_case(seed, index)
        index += 1
        if engines is not None and case.engine not in engines:
            if index > 64 * n_cases:  # engine filter matched nothing
                break
            continue
        out.append(case)
    return out


def fuzz(
    seed: int,
    n_cases: int,
    engines: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[CaseOutcome], None]] = None,
) -> List[CaseOutcome]:
    """Generate and run ``n_cases`` differential checks."""
    outcomes = []
    for case in generate_cases(seed, n_cases, engines=engines):
        outcome = run_case(case)
        if progress is not None:
            progress(outcome)
        outcomes.append(outcome)
    return outcomes
