"""Conformance subsystem: golden oracle, differential fuzzer, shrinker.

See DESIGN.md §9.  Entry points:

* :class:`OracleEngine` -- trusted in-memory reference engine
  (also registered as ``engine="oracle"`` in :func:`repro.run`);
* :func:`compare_results` -- oracle-vs-engine semantic diff;
* :func:`fuzz` / :func:`run_case` -- seeded differential fuzzing over
  adversarial graphs and the engine config matrix;
* :func:`shrink` / :func:`save_case` / :func:`load_case` /
  :func:`replay_case` -- failing-case minimisation and the
  ``tests/cases/*.json`` regression format.
"""

from .compare import compare_results
from .fuzzer import CaseOutcome, ConformanceCase, fuzz, generate_cases, run_case
from .oracle import OracleEngine
from .shrinker import load_case, replay_case, save_case, shrink
from .streamcases import (
    StreamCase,
    StreamOutcome,
    fuzz_stream,
    generate_stream_cases,
    run_stream_case,
)

__all__ = [
    "OracleEngine",
    "compare_results",
    "ConformanceCase",
    "CaseOutcome",
    "fuzz",
    "generate_cases",
    "run_case",
    "shrink",
    "save_case",
    "load_case",
    "replay_case",
    "StreamCase",
    "StreamOutcome",
    "fuzz_stream",
    "generate_stream_cases",
    "run_stream_case",
]
