"""Differential fuzzing for the streaming-update subsystem.

Extends the conformance layer (DESIGN.md §9) along the update
dimension: every case feeds a seeded sequence of edge-update batches
through a :class:`~repro.stream.StreamSession` and, **after every
batch**, checks two invariants against trusted host-side references:

1. *storage*: the store's materialised CSR is array-exactly the graph a
   plain host-side mirror of the update semantics produces (insert =
   append, delete = drop every live ``(src, dst)`` instance);
2. *compute*: the session's recompute -- incremental or full, whichever
   the policy picks -- yields bit-exactly the final values of a
   from-scratch :class:`~repro.verify.OracleEngine` run on that graph.

Case generation mirrors :mod:`repro.verify.fuzzer`: case ``i`` of
master seed ``s`` is derived from ``default_rng([s, i])`` and nothing
else.  The schedule cycles programs (PageRank, SSSP, CDLP, BFS, WCC),
so both warm-start-capable programs and full-recompute-only programs
are exercised, and every third case cuts power mid-ingest or mid-merge
and recovers before continuing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..errors import SimulatedCrashError
from ..graph.csr import CSRGraph
from ..options import EngineOptions
from ..ssd.faults import FaultPlan, FaultRule
from .compare import compare_results
from .fuzzer import (
    _config_dict,
    _graph_spec,
    _spec_n_vertices,
    build_config,
    build_graph,
    _PROGRAM_FACTORIES,
)
from .oracle import OracleEngine

#: Program schedule: the paper-core trio the issue names plus the two
#: remaining monotone programs, so the incremental path (BFS/SSSP/WCC)
#: and the full-recompute fallback (PageRank/CDLP) both get air time.
STREAM_PROGRAMS = ("pagerank", "sssp", "cdlp", "bfs", "wcc")

#: Programs whose ``warm_start`` can take the incremental path.
WARM_PROGRAMS = frozenset({"bfs", "sssp", "wcc"})

#: Crash-scenario phases: power cut while appending update-log pages
#: (ingest) or while appending delta pages (merge).
CRASH_PHASES = ("ingest", "apply")


@dataclass
class StreamCase:
    """One streaming differential check, JSON-serialisable."""

    case_id: str
    program: str
    prog_params: Dict[str, Any]
    graph: Dict[str, Any]
    config: Dict[str, Any]
    batches: List[List[Dict[str, Any]]]
    recompute: str = "auto"
    scenario: str = "plain"
    scenario_params: Dict[str, Any] = field(default_factory=dict)
    max_supersteps: int = 200
    seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "StreamCase":
        return cls(**{k: d[k] for k in cls.__dataclass_fields__ if k in d})

    def describe(self) -> str:
        bits = [
            self.case_id, "stream", self.program,
            f"graph={self.graph.get('kind')}",
            f"batches={len(self.batches)}",
            f"recompute={self.recompute}",
        ]
        if self.scenario != "plain":
            p = self.scenario_params
            bits.append(f"crash@{p.get('phase')}[b{p.get('batch')},op{p.get('after_ops')}]")
        return " ".join(bits)


@dataclass
class StreamOutcome:
    """What happened when a stream case ran."""

    case: StreamCase
    mismatches: List[str] = field(default_factory=list)
    error: Optional[str] = None
    note: str = ""

    @property
    def ok(self) -> bool:
        return not self.mismatches and self.error is None

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        tail = ""
        if self.error:
            tail = f" error: {self.error}"
        elif self.mismatches:
            tail = f" {self.mismatches[0]}"
        if self.note:
            tail += f" [{self.note}]"
        return f"{status} {self.case.describe()}{tail}"


# -- host-side mirror ---------------------------------------------------------


class _HostMirror:
    """Plain-Python reference of the update semantics."""

    def __init__(self, graph: CSRGraph) -> None:
        src, dst = graph.edge_array()
        self.n = graph.n
        self.weighted = graph.weights is not None
        self.src = [int(x) for x in src]
        self.dst = [int(x) for x in dst]
        self.w = [float(x) for x in graph.weights] if self.weighted else None

    def apply(self, records: List[Dict[str, Any]]) -> None:
        for rec in records:
            s, d = int(rec["src"]), int(rec["dst"])
            if rec["op"] == "add":
                self.src.append(s)
                self.dst.append(d)
                if self.weighted:
                    self.w.append(float(rec.get("w", 1.0)))
            else:
                keep = [
                    i for i in range(len(self.src))
                    if not (self.src[i] == s and self.dst[i] == d)
                ]
                self.src = [self.src[i] for i in keep]
                self.dst = [self.dst[i] for i in keep]
                if self.weighted:
                    self.w = [self.w[i] for i in keep]

    def graph(self) -> CSRGraph:
        return CSRGraph.from_edges(
            self.n,
            np.asarray(self.src, np.int64),
            np.asarray(self.dst, np.int64),
            weights=None if not self.weighted else np.asarray(self.w, np.float64),
        )


def _graphs_equal(a: CSRGraph, b: CSRGraph) -> bool:
    if not (np.array_equal(a.rowptr, b.rowptr) and np.array_equal(a.colidx, b.colidx)):
        return False
    if (a.weights is None) != (b.weights is None):
        return False
    return a.weights is None or np.array_equal(a.weights, b.weights)


# -- execution ---------------------------------------------------------------


def run_stream_case(case: StreamCase) -> StreamOutcome:
    """Run one streaming differential check; engine misbehaviour is
    captured in the outcome, never raised."""
    from ..stream import EdgeDelta, StreamSession

    outcome = StreamOutcome(case=case)
    try:
        graph = build_graph(case.graph)
        cfg = build_config(case.config)
        if "stream_compact_threshold" in case.config:
            cfg = cfg.with_stream(
                compact_threshold=float(case.config["stream_compact_threshold"])
            )
        program = _PROGRAM_FACTORIES[case.program](case.prog_params)
        session = StreamSession(
            graph, program, config=cfg,
            options=EngineOptions(recompute=case.recompute),
        )
        mirror = _HostMirror(graph)
        notes = []

        # Baseline: the session's first recompute on the unmodified
        # graph is itself a differential check (engine vs oracle).
        r = session.recompute(max_supersteps=case.max_supersteps, seed=case.seed)
        oracle = OracleEngine(build_graph(case.graph), _fresh_program(case), cfg).run(
            max_supersteps=case.max_supersteps, seed=case.seed
        )
        outcome.mismatches = compare_results(
            oracle, r.result, check_supersteps=False, check_records=False
        )
        if outcome.mismatches:
            outcome.mismatches = [f"baseline: {m}" for m in outcome.mismatches]
            return outcome

        crash = case.scenario == "crash"
        crash_batch = int(case.scenario_params.get("batch", 0)) if crash else -1
        for b, records in enumerate(case.batches):
            delta = EdgeDelta.from_records(records)
            expected_seq = session.store.last_ingested + 1
            if crash and b == crash_batch:
                note = _run_crashed_batch(session, delta, expected_seq, case)
                notes.append(note)
            else:
                session.ingest(delta)
                session.apply_updates()
            mirror.apply(records)

            mat = session.store.materialize()
            ref = mirror.graph()
            if not _graphs_equal(mat, ref):
                outcome.mismatches.append(
                    f"batch {b}: materialised graph differs from host mirror "
                    f"(m={mat.m} vs {ref.m})"
                )
                return outcome

            r = session.recompute(max_supersteps=case.max_supersteps, seed=case.seed)
            notes.append(r.mode[0])  # i / f per batch
            oracle = OracleEngine(ref, _fresh_program(case), cfg).run(
                max_supersteps=case.max_supersteps, seed=case.seed
            )
            outcome.mismatches = compare_results(
                oracle, r.result, check_supersteps=False, check_records=False
            )
            if outcome.mismatches:
                outcome.mismatches = [
                    f"batch {b} ({r.mode}): {m}" for m in outcome.mismatches
                ]
                return outcome
        outcome.note = "".join(notes)
    except Exception as exc:
        outcome.error = f"{type(exc).__name__}: {exc}"
    return outcome


def _fresh_program(case: StreamCase):
    return _PROGRAM_FACTORIES[case.program](case.prog_params)


def _run_crashed_batch(session, delta, expected_seq: int, case: StreamCase) -> str:
    """Cut power during this batch's ingest or merge, then recover.

    Returns a one-letter note: ``C`` when the planned crash fired, ``c``
    when the operation finished before the fault armed (small batches
    may not reach the trigger count -- still a valid run).
    """
    phase = case.scenario_params.get("phase", "ingest")
    after_ops = int(case.scenario_params.get("after_ops", 0))
    klass = "ulog" if phase == "ingest" else "stream_delta"
    plan = FaultPlan(
        [FaultRule(op="write", kind="crash", klass=klass, after_ops=after_ops)],
        seed=case.seed,
    )
    fired = False
    session.fs.device.fault_plan = plan
    try:
        # The klass filter picks which phase the cut lands in.
        session.ingest(delta)
        session.apply_updates()
    except SimulatedCrashError:
        fired = True
    finally:
        session.fs.device.fault_plan = None
    if fired:
        session.recover()
        # Re-submit only if the batch did not reach its durable commit
        # point before the cut (exactly what a client with a pending
        # acknowledgement would do).
        if session.store.last_ingested < expected_seq:
            session.ingest(delta)
        session.apply_updates()
        return "C"
    return "c"


# -- generation --------------------------------------------------------------


def _symmetrize_records(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Mirror every op so the graph stays symmetric (CDLP's contract)."""
    out: List[Dict[str, Any]] = []
    for rec in records:
        out.append(rec)
        if rec["src"] != rec["dst"]:
            out.append({**rec, "src": rec["dst"], "dst": rec["src"]})
    return out


def generate_stream_case(master_seed: int, index: int) -> StreamCase:
    """Deterministically derive stream case ``index`` of ``master_seed``."""
    from ..stream import random_delta

    rng = np.random.default_rng([master_seed, index])
    program = STREAM_PROGRAMS[index % len(STREAM_PROGRAMS)]
    graph = _graph_spec(rng, "multilogvc", program)
    n_total = _spec_n_vertices(graph)

    prog_params: Dict[str, Any] = {}
    if program in ("bfs", "sssp"):
        prog_params["source"] = int(rng.integers(0, n_total))
    if program == "pagerank":
        prog_params["threshold"] = float(rng.choice([0.01, 0.001]))

    # Updates are generated against the (deterministic) base graph:
    # deletions mostly target base edges, insertions are uniform pairs.
    base = build_graph(graph)
    src0, dst0 = base.edge_array()
    weighted = graph.get("weighted", False)
    batches: List[List[Dict[str, Any]]] = []
    for b in range(int(rng.integers(2, 4))):
        n_ops = int(rng.integers(2, 11))
        delta = random_delta(
            rng, n_total, src0, dst0, n_ops,
            p_delete=float(rng.choice([0.2, 0.4, 0.6])),
            weighted=weighted,
            ts0=100 * b,
        )
        records = delta.to_records()
        if program == "cdlp":
            records = _symmetrize_records(records)
        batches.append(records)

    scenario = "plain"
    scenario_params: Dict[str, Any] = {}
    if index % 3 == 2:
        scenario = "crash"
        scenario_params = {
            "phase": CRASH_PHASES[(index // 3) % len(CRASH_PHASES)],
            "batch": int(rng.integers(0, len(batches))),
            "after_ops": int(rng.integers(0, 3)),
        }

    recompute = "auto"
    if index % 7 == 5:
        recompute = "full"
    elif index % 7 == 6 and program in WARM_PROGRAMS:
        recompute = "incremental"

    config = _config_dict(rng)
    if rng.integers(0, 2):
        # Half the cases compact aggressively, so the rewrite path runs
        # under the differential check too.
        config["stream_compact_threshold"] = float(rng.choice([0.05, 0.2]))

    # Monotone warm starts need actual convergence (the fixed point is
    # the invariant); trajectory-compared programs need matched budgets.
    max_supersteps = 200 if program in WARM_PROGRAMS else 15

    return StreamCase(
        case_id=f"st{master_seed}-{index:03d}",
        program=program,
        prog_params=prog_params,
        graph=graph,
        config=config,
        batches=batches,
        recompute=recompute,
        scenario=scenario,
        scenario_params=scenario_params,
        max_supersteps=max_supersteps,
        seed=int(rng.integers(0, 100)),
    )


def generate_stream_cases(seed: int, n_cases: int) -> List[StreamCase]:
    return [generate_stream_case(seed, i) for i in range(n_cases)]


def fuzz_stream(
    seed: int,
    n_cases: int,
    progress: Optional[Callable[[StreamOutcome], None]] = None,
) -> List[StreamOutcome]:
    """Generate and run ``n_cases`` streaming differential checks."""
    outcomes = []
    for case in generate_stream_cases(seed, n_cases):
        outcome = run_stream_case(case)
        if progress is not None:
            progress(outcome)
        outcomes.append(outcome)
    return outcomes
